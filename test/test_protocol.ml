(* End-to-end protocol tests: Phase1, Dispute control, and the full NAB
   driver under the whole adversary zoo. *)

open Nab_graph
open Nab_net
open Nab_core

let k4 = Gen.complete ~n:4 ~cap:2
let k5 = Gen.complete ~n:5 ~cap:2
let k7 = Gen.complete ~n:7 ~cap:1

let chords7 = Gen.ring_with_chords ~n:7 ~cap:2 ~chord_cap:2

let dumbbell = Gen.dumbbell ~clique:3 ~clique_cap:4 ~bridge_cap:1

let input_fn ~l ~seed =
  let rng = Random.State.make [| seed |] in
  let tbl = Hashtbl.create 16 in
  fun k ->
    match Hashtbl.find_opt tbl k with
    | Some v -> v
    | None ->
        let v = Bitvec.random l rng in
        Hashtbl.add tbl k v;
        v

(* ---------- Phase 1 ---------- *)

let test_phase1_fault_free () =
  List.iter
    (fun (g, name) ->
      let gamma = Params.gamma_k g ~source:1 in
      let trees = Arborescence.pack g ~root:1 ~k:gamma in
      let l = 24 * gamma in
      let value = Bitvec.random l (Random.State.make [| 3 |]) in
      let sim = Sim.create g ~bits:Packet.bits in
      let received =
        Phase1.run ~net:(Sim.transport sim) ~phase:"phase1" ~trees ~source:1 ~value ~faulty:Vset.empty ()
      in
      let sizes = Phase1.slice_sizes ~value_bits:l ~trees:gamma in
      List.iter
        (fun v ->
          if v <> 1 then
            Alcotest.(check bool)
              (Printf.sprintf "%s: node %d assembled" name v)
              true
              (Bitvec.equal value (Phase1.assemble ~slice_sizes:sizes (received v))))
        (Digraph.vertices g);
      (* Pipelined Phase-1 cost per hop is at most L/gamma. *)
      Alcotest.(check bool)
        (Printf.sprintf "%s: bottleneck <= L/gamma" name)
        true
        ((Sim.timing sim).Sim.pipelined <= (float_of_int l /. float_of_int gamma) +. 1e-9))
    [ (k4, "K4"); (chords7, "chords7"); (Gen.figure2, "fig2"); (dumbbell, "dumbbell") ]

let test_phase1_corruption_is_local () =
  (* A faulty node corrupts tree t: only its descendants on tree t are
     affected, and only in slice t. *)
  let g = k4 in
  let gamma = Params.gamma_k g ~source:1 in
  let trees = Arborescence.pack g ~root:1 ~k:gamma in
  let l = 8 * gamma in
  let value = Bitvec.random l (Random.State.make [| 4 |]) in
  let sim = Sim.create g ~bits:Packet.bits in
  let adversary ~me:_ ~tree ~dst:_ payload =
    if tree = 0 then
      match payload with
      | Wire.Value { bits; data } ->
          let data = Array.copy data in
          data.(0) <- data.(0) lxor 0xff;
          Some (Wire.Value { bits; data })
      | p -> Some p
    else Some payload
  in
  let received =
    Phase1.run ~net:(Sim.transport sim) ~phase:"phase1" ~trees ~source:1 ~value ~faulty:(Vset.singleton 3)
      ~adversary ()
  in
  let sizes = Phase1.slice_sizes ~value_bits:l ~trees:gamma in
  let slices = Bitvec.split_balanced value ~parts:gamma in
  let tree0 = List.hd trees in
  List.iter
    (fun v ->
      if v <> 1 then begin
        let per_tree = received v in
        (* Trees other than 0 deliver intact slices everywhere. *)
        List.iteri
          (fun t slice ->
            if t > 0 then
              Alcotest.(check bool)
                (Printf.sprintf "node %d tree %d intact" v t)
                true
                (Bitvec.equal slice
                   (Phase1.payload_slice ~slice_bits:sizes.(t)
                      (Some (Option.get per_tree.(t))))))
          slices;
        (* Tree 0: corrupted iff 3 is a strict ancestor of v on tree 0. *)
        let rec ancestor a v =
          match Arborescence.parent tree0 v with
          | None -> false
          | Some p -> p = a || ancestor a p
        in
        let got0 = Phase1.payload_slice ~slice_bits:sizes.(0) per_tree.(0) in
        let expected_corrupt = ancestor 3 v in
        Alcotest.(check bool)
          (Printf.sprintf "node %d tree 0 corruption" v)
          expected_corrupt
          (not (Bitvec.equal (List.hd slices) got0))
      end)
    (Digraph.vertices g)

let test_phase1_timing_matches_paper () =
  (* On fig2 (gamma = 2), unit capacities on tree edges: Phase 1 of an
     L-bit value takes L/2 per hop; the deepest tree has 2 hops. *)
  let g = Gen.figure2 in
  let trees = Arborescence.pack g ~root:1 ~k:2 in
  let l = 32 in
  let value = Bitvec.random l (Random.State.make [| 5 |]) in
  let sim = Sim.create g ~bits:Packet.bits in
  let (_ : int -> Wire.payload option array) =
    Phase1.run ~net:(Sim.transport sim) ~phase:"phase1" ~trees ~source:1 ~value ~faulty:Vset.empty ()
  in
  Alcotest.(check (float 1e-9)) "bottleneck = L/gamma" 16.0 ((Sim.timing sim).Sim.pipelined)

let test_phase1_flood_matches_scheduled () =
  (* On a zero-delay network the flood variant delivers exactly what the
     scheduled variant does. *)
  List.iter
    (fun (g, name) ->
      let gamma = Params.gamma_k g ~source:1 in
      let trees = Arborescence.pack g ~root:1 ~k:gamma in
      let l = 16 * gamma in
      let value = Bitvec.random l (Random.State.make [| 8 |]) in
      let sizes = Phase1.slice_sizes ~value_bits:l ~trees:gamma in
      let sim = Sim.create g ~bits:Packet.bits in
      let received =
        Phase1.run_flood ~net:(Sim.transport sim) ~phase:"p1" ~trees ~source:1 ~value ~faulty:Vset.empty ()
      in
      List.iter
        (fun v ->
          if v <> 1 then
            Alcotest.(check bool)
              (Printf.sprintf "%s: node %d" name v)
              true
              (Bitvec.equal value (Phase1.assemble ~slice_sizes:sizes (received v))))
        (Digraph.vertices g))
    [ (k4, "K4"); (Gen.figure2, "fig2"); (dumbbell, "dumbbell") ]

let test_phase1_flood_with_delays () =
  (* Propagation delays (paper footnote 1): the flood variant still delivers
     the exact value; completion just takes delay-many extra rounds. *)
  let g = dumbbell in
  let gamma = Params.gamma_k g ~source:1 in
  let trees = Arborescence.pack g ~root:1 ~k:gamma in
  let l = 12 * gamma in
  let value = Bitvec.random l (Random.State.make [| 9 |]) in
  let sizes = Phase1.slice_sizes ~value_bits:l ~trees:gamma in
  (* Bridges are slow: 3 rounds of propagation; clique links 1 round. *)
  let delays (src, dst) = if abs (src - dst) >= 3 then 3 else 1 in
  let baseline_rounds =
    let sim = Sim.create g ~bits:Packet.bits in
    let (_ : int -> Wire.payload option array) =
      Phase1.run_flood ~net:(Sim.transport sim) ~phase:"p1" ~trees ~source:1 ~value ~faulty:Vset.empty ()
    in
    Sim.rounds_run sim
  in
  let sim = Sim.create ~delays g ~bits:Packet.bits in
  let received =
    Phase1.run_flood ~net:(Sim.transport sim) ~phase:"p1" ~trees ~source:1 ~value ~faulty:Vset.empty ()
  in
  List.iter
    (fun v ->
      if v <> 1 then
        Alcotest.(check bool)
          (Printf.sprintf "delayed: node %d" v)
          true
          (Bitvec.equal value (Phase1.assemble ~slice_sizes:sizes (received v))))
    (Digraph.vertices g);
  Alcotest.(check bool) "delays cost extra rounds" true
    (Sim.rounds_run sim > baseline_rounds)

let test_phase1_run_drains_delayed_final_hop () =
  (* A 2-round delay on the final hop of the line 1 -> 2 -> 3: the slice
     node 2 forwards in round 2 is still in flight when the scheduled
     variant's depth-many rounds are done. The seed [Phase1.run] returned
     with that message stranded in the simulator and node 3 reassembled
     zeros; [run] must drain in-flight traffic before returning. *)
  let g = Digraph.of_edges [ (1, 2, 1); (2, 1, 1); (2, 3, 1); (3, 2, 1) ] in
  let trees = Arborescence.pack g ~root:1 ~k:1 in
  let l = 16 in
  let value = Bitvec.random l (Random.State.make [| 21 |]) in
  let sizes = Phase1.slice_sizes ~value_bits:l ~trees:1 in
  let delays (src, dst) = if (src, dst) = (2, 3) then 2 else 0 in
  let sim = Sim.create ~delays g ~bits:Packet.bits in
  let received =
    Phase1.run ~net:(Sim.transport sim) ~phase:"p1" ~trees ~source:1 ~value ~faulty:Vset.empty ()
  in
  Alcotest.(check int) "nothing stranded" 0 (Sim.pending_count sim);
  Alcotest.(check bool) "node 3 reassembles the value" true
    (Bitvec.equal value (Phase1.assemble ~slice_sizes:sizes (received 3)))

(* ---------- RLNC alternative Phase 1 ---------- *)

let test_rlnc_decodes_everywhere () =
  List.iter
    (fun (name, g) ->
      let gamma = Params.gamma_k g ~source:1 in
      let m = 8 in
      let l = gamma * m * 4 in
      let value = Bitvec.random l (Random.State.make [| 7 |]) in
      let sim = Sim.create g ~bits:Packet.bits in
      let r = Rlnc.broadcast ~net:(Sim.transport sim) ~phase:"rlnc" ~source:1 ~value ~gamma ~m ~seed:3 () in
      Alcotest.(check bool) (name ^ ": all decoded") true r.Rlnc.all_decoded;
      List.iter
        (fun (v, d) ->
          match d with
          | Some d ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: node %d correct" name v)
                true (Bitvec.equal d value)
          | None -> Alcotest.fail (Printf.sprintf "%s: node %d undecoded" name v))
        r.Rlnc.decoded;
      Alcotest.(check bool) (name ^ ": headers accounted") true (r.Rlnc.header_bits > 0);
      (* The generation needs at least gamma innovative packets and one round
         per hop; a handful of rounds must suffice on these graphs. *)
      Alcotest.(check bool) (name ^ ": few rounds") true (r.Rlnc.rounds <= 8))
    [
      ("K4", k4);
      ("fig2", Gen.figure2);
      ("chords7", chords7);
      ("dumbbell", dumbbell);
    ]

let test_rlnc_random_graphs =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:20 ~name:"RLNC decodes on random feasible graphs"
       (QCheck2.Gen.int_range 0 400)
       (fun seed ->
         let g = Gen.random_bb_feasible ~n:5 ~f:1 ~p:0.8 ~min_cap:1 ~max_cap:3 ~seed in
         let gamma = Params.gamma_k g ~source:1 in
         let value = Bitvec.random (gamma * 8 * 2) (Random.State.make [| seed |]) in
         let sim = Sim.create g ~bits:Packet.bits in
         let r =
           Rlnc.broadcast ~net:(Sim.transport sim) ~phase:"rlnc" ~source:1 ~value ~gamma ~m:8 ~seed ()
         in
         r.Rlnc.all_decoded
         && List.for_all
              (fun (_, d) -> match d with Some d -> Bitvec.equal d value | None -> false)
              r.Rlnc.decoded))

let test_rlnc_validates_input () =
  let sim = Sim.create k4 ~bits:Packet.bits in
  Alcotest.check_raises "length must divide"
    (Invalid_argument "Rlnc.broadcast: value length must be a positive multiple of gamma * m")
    (fun () ->
      ignore
        (Rlnc.broadcast ~net:(Sim.transport sim) ~phase:"rlnc" ~source:1 ~value:(Bitvec.create 33) ~gamma:2
           ~m:8 ~seed:1 ()))

(* ---------- Dispute control unit behaviour ---------- *)

let run_nab ?(g = k4) ?(q = 5) ?(l = 256) ?(m = 8) ?(f = 1) ?(backend = `Eig) adv =
  let config = Nab.config ~f ~l_bits:l ~m ~flag_backend:backend () in
  let inputs = input_fn ~l ~seed:17 in
  (Nab.run ~g ~config ~adversary:adv ~inputs ~q (), inputs)

(* Synthetic DC2/DC3 scenarios against the pure analyse function. *)
let make_dc_ctx () =
  let g = k4 in
  let gamma = Params.gamma_k g ~source:1 in
  let rho = Params.rho_k g ~total_n:4 ~f:1 ~disputes:[] in
  let trees = Arborescence.pack g ~root:1 ~k:gamma in
  let omega = Params.omega_k g ~total_n:4 ~f:1 ~disputes:[] in
  let coding, _ = Coding.generate_correct g ~omega ~rho ~m:8 ~seed:5 () in
  let value_bits = rho * 8 in
  let value = Bitvec.random value_bits (Random.State.make [| 2 |]) in
  ( {
      Dispute.gk = g;
      total_n = 4;
      f = 1;
      source = 1;
      trees;
      coding;
      value_bits;
      flags = List.map (fun v -> (v, false)) (Digraph.vertices g);
    },
    value )

(* The claims a fully honest execution would produce, built directly from
   the protocol's expected behaviour. *)
let honest_claims_for ctx value =
  let trees = ctx.Dispute.trees in
  let slices = Bitvec.split_balanced value ~parts:(List.length trees) in
  let m = Nab_field.Gf2p.degree (Coding.field ctx.Dispute.coding) in
  let x = Bitvec.to_symbols value ~sym_bits:m in
  let claim ~proto ~src ~dst ~dir body =
    { Wire.c_phase = proto; c_round = 0; c_src = src; c_dst = dst; c_dir = dir; c_body = body }
  in
  let p1 =
    List.concat
      (List.mapi
         (fun t tree ->
           let payload = Phase1.slice_payload (List.nth slices t) in
           List.concat_map
             (fun (parent, child) ->
               [
                 claim ~proto:(Phase1.tree_proto t) ~src:parent ~dst:child ~dir:Wire.Sent
                   payload;
                 claim ~proto:(Phase1.tree_proto t) ~src:parent ~dst:child
                   ~dir:Wire.Received payload;
               ])
             tree)
         trees)
  in
  let ec =
    Digraph.fold_edges
      (fun s d _ acc ->
        let payload = Equality_check.expected_send ctx.Dispute.coding ~edge:(s, d) ~x in
        claim ~proto:Equality_check.proto ~src:s ~dst:d ~dir:Wire.Sent payload
        :: claim ~proto:Equality_check.proto ~src:s ~dst:d ~dir:Wire.Received payload
        :: acc)
      ctx.Dispute.gk []
  in
  let all = p1 @ ec in
  fun v ->
    List.filter (fun (c : Wire.claim) -> c.Wire.c_src = v && c.Wire.c_dir = Wire.Sent
                                          || c.Wire.c_dst = v && c.Wire.c_dir = Wire.Received)
      all

let test_analyse_consistent_claims () =
  let ctx, value = make_dc_ctx () in
  let claims = honest_claims_for ctx value in
  let verdict = Dispute.analyse ~ctx ~claims ~agreed_input:value in
  Alcotest.(check (list (pair int int))) "no disputes" [] verdict.Dispute.new_disputes;
  Alcotest.(check (list int)) "nobody convicted" []
    (Vset.elements verdict.Dispute.provably_faulty);
  Alcotest.(check bool) "output is the input" true
    (Bitvec.equal verdict.Dispute.output value)

let test_analyse_dc2_mismatch () =
  let ctx, value = make_dc_ctx () in
  let base = honest_claims_for ctx value in
  (* Node 3's claimed reception from node 2 on the EC is tampered. *)
  let claims v =
    if v <> 3 then base v
    else
      List.map
        (fun (c : Wire.claim) ->
          if c.Wire.c_dir = Wire.Received && c.Wire.c_src = 2 && c.Wire.c_phase = Equality_check.proto
          then { c with Wire.c_body = Wire.Nothing }
          else c)
        (base v)
  in
  (* Node 3's lie makes its EC replay expect a MISMATCH flag it never
     announced, so DC3 convicts it; the {2,3} DC2 dispute also appears. *)
  let verdict = Dispute.analyse ~ctx ~claims ~agreed_input:value in
  Alcotest.(check bool) "dispute {2,3} found" true
    (List.mem (2, 3) verdict.Dispute.new_disputes);
  Alcotest.(check (list int)) "node 3 convicted by flag replay" [ 3 ]
    (Vset.elements verdict.Dispute.provably_faulty)

let test_analyse_dc3_lying_sender () =
  let ctx, value = make_dc_ctx () in
  let base = honest_claims_for ctx value in
  (* Node 2 claims EC sends inconsistent with its claimed receptions. *)
  let claims v =
    if v <> 2 then base v
    else
      List.map
        (fun (c : Wire.claim) ->
          if c.Wire.c_dir = Wire.Sent && c.Wire.c_src = 2 && c.Wire.c_phase = Equality_check.proto
          then { c with Wire.c_body = Wire.Nothing }
          else c)
        (base v)
  in
  let verdict = Dispute.analyse ~ctx ~claims ~agreed_input:value in
  Alcotest.(check bool) "node 2 convicted" true
    (Vset.mem 2 verdict.Dispute.provably_faulty);
  Alcotest.(check bool) "convict disputed with all neighbours" true
    (List.for_all
       (fun nbr -> List.mem (Params.norm_dispute 2 nbr) verdict.Dispute.new_disputes)
       (Digraph.neighbors ctx.Dispute.gk 2))

let test_analyse_false_flag_convicted () =
  let ctx, value = make_dc_ctx () in
  let ctx = { ctx with Dispute.flags = [ (1, false); (2, false); (3, true); (4, false) ] } in
  let claims = honest_claims_for ctx value in
  (* Node 3 announced MISMATCH although its own claims justify NULL. *)
  let verdict = Dispute.analyse ~ctx ~claims ~agreed_input:value in
  Alcotest.(check (list int)) "false flagger convicted" [ 3 ]
    (Vset.elements verdict.Dispute.provably_faulty)

let test_honest_never_convicted () =
  (* Under every adversary, dispute control must never classify a fault-free
     node as necessarily faulty (soundness of DC3/DC4). *)
  List.iter
    (fun (name, adv) ->
      let report, _ = run_nab adv in
      let survivors = Digraph.vertex_set report.Nab.final_graph in
      List.iter
        (fun v ->
          if not (Vset.mem v report.Nab.faulty) then
            Alcotest.(check bool)
              (Printf.sprintf "%s: honest %d survives" name v)
              true (Vset.mem v survivors))
        (Digraph.vertices k4))
    Adversary.all

let test_disputes_always_involve_faulty () =
  List.iter
    (fun (name, adv) ->
      let report, _ = run_nab adv in
      List.iter
        (fun (a, b) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: dispute {%d,%d} touches a faulty node" name a b)
            true
            (Vset.mem a report.Nab.faulty || Vset.mem b report.Nab.faulty))
        report.Nab.disputes)
    Adversary.all

(* ---------- NAB end-to-end: agreement, validity, budget ---------- *)

let test_nab_all_adversaries_k4 () =
  List.iter
    (fun (name, adv) ->
      let report, inputs = run_nab adv in
      Alcotest.(check bool) (name ^ ": agreement") true (Nab.fault_free_agree report);
      Alcotest.(check bool) (name ^ ": validity") true
        (Nab.valid_outputs report ~inputs);
      Alcotest.(check bool) (name ^ ": DC budget") true
        (report.Nab.dc_count <= 1 * (1 + 1)))
    Adversary.all

let test_nab_all_adversaries_chords7 () =
  List.iter
    (fun (name, adv) ->
      let report, inputs = run_nab ~g:chords7 ~q:4 ~l:128 adv in
      Alcotest.(check bool) (name ^ ": agreement") true (Nab.fault_free_agree report);
      Alcotest.(check bool) (name ^ ": validity") true (Nab.valid_outputs report ~inputs))
    Adversary.all

let test_nab_f2_k7 () =
  List.iter
    (fun (name, adv) ->
      let report, inputs = run_nab ~g:k7 ~q:4 ~l:64 ~f:2 adv in
      Alcotest.(check bool) (name ^ ": agreement") true (Nab.fault_free_agree report);
      Alcotest.(check bool) (name ^ ": validity") true (Nab.valid_outputs report ~inputs);
      Alcotest.(check bool) (name ^ ": DC budget f(f+1)") true (report.Nab.dc_count <= 6))
    Adversary.all

let test_nab_phase_king_backend () =
  List.iter
    (fun (name, adv) ->
      let report, inputs = run_nab ~g:k5 ~backend:`Phase_king adv in
      Alcotest.(check bool) (name ^ ": pk agreement") true (Nab.fault_free_agree report);
      Alcotest.(check bool) (name ^ ": pk validity") true
        (Nab.valid_outputs report ~inputs))
    [ ("none", Adversary.none); ("crash", Adversary.crash); ("ec-liar", Adversary.ec_liar) ]

let test_nab_dumbbell () =
  let report, inputs = run_nab ~g:dumbbell ~q:3 ~l:128 Adversary.ec_liar in
  Alcotest.(check bool) "agreement" true (Nab.fault_free_agree report);
  Alcotest.(check bool) "validity" true (Nab.valid_outputs report ~inputs)

let test_nab_clean_run_never_fires_dc () =
  let report, _ = run_nab ~q:8 Adversary.dormant in
  Alcotest.(check int) "no DC" 0 report.Nab.dc_count;
  List.iter
    (fun (i : Nab.instance_report) ->
      Alcotest.(check bool) "no mismatch" false i.Nab.mismatch)
    report.Nab.instances

let test_nab_attacker_eventually_neutralised () =
  (* A persistent EC liar gets excluded; afterwards instances run at the
     fault-free rate and the "reduced to phase 1" special case kicks in. *)
  let report, _ = run_nab ~q:6 Adversary.ec_liar in
  let dc_instances =
    List.filter (fun (i : Nab.instance_report) -> i.Nab.dc_run) report.Nab.instances
  in
  Alcotest.(check int) "exactly one DC" 1 (List.length dc_instances);
  let last = List.nth report.Nab.instances 5 in
  Alcotest.(check bool) "later instances reduced to phase 1" true
    last.Nab.reduced_to_phase1;
  Alcotest.(check int) "faulty node excluded" 3
    (Digraph.num_vertices report.Nab.final_graph)

let test_nab_faulty_source_excluded_default () =
  (* A source that equivocates is eventually excluded; subsequent instances
     agree on the all-zero default. *)
  let report, _ = run_nab ~q:4 Adversary.source_equivocate in
  Alcotest.(check bool) "agreement" true (Nab.fault_free_agree report);
  Alcotest.(check bool) "source excluded" false
    (Digraph.mem_vertex report.Nab.final_graph 1);
  let last = List.nth report.Nab.instances 3 in
  List.iter
    (fun (_, d) ->
      Alcotest.(check bool) "default output" true (Bitvec.equal d (Bitvec.create 256)))
    last.Nab.decisions

let test_nab_stealthy_exhausts_budget () =
  (* The stealthy attacker survives DC3 and burns one dispute per DC: at
     f = 1 it forces exactly f(f+1) = 2 dispute controls before the
     pigeonhole convicts it; graph evolution runs through three distinct
     G_k along the way. *)
  let report, inputs = run_nab ~q:6 Adversary.stealthy in
  Alcotest.(check bool) "agreement" true (Nab.fault_free_agree report);
  Alcotest.(check bool) "validity" true (Nab.valid_outputs report ~inputs);
  Alcotest.(check int) "exactly f(f+1) DCs" 2 report.Nab.dc_count;
  Alcotest.(check bool) "attacker finally excluded" false
    (Digraph.mem_vertex report.Nab.final_graph 4);
  (* The two DCs happen in the first two instances and record one new
     dispute each, never convicting in the first round. *)
  let dcs = List.filter (fun (i : Nab.instance_report) -> i.Nab.dc_run) report.Nab.instances in
  List.iter
    (fun (i : Nab.instance_report) ->
      Alcotest.(check int)
        (Printf.sprintf "instance %d: one new dispute" i.Nab.k)
        1
        (List.length i.Nab.new_disputes))
    dcs

let test_nab_stealthy_f2 () =
  let report, inputs = run_nab ~g:k7 ~q:10 ~l:64 ~f:2 Adversary.stealthy in
  Alcotest.(check bool) "agreement" true (Nab.fault_free_agree report);
  Alcotest.(check bool) "validity" true (Nab.valid_outputs report ~inputs);
  Alcotest.(check bool) "budget" true (report.Nab.dc_count <= 6);
  Alcotest.(check bool) "multiple DCs exercised" true (report.Nab.dc_count >= 2)

let test_nab_false_flag_budget () =
  (* The purely disruptive attacker forces DC, which identifies it: the
     budget f(f+1) bounds total DC executions. *)
  let report, inputs = run_nab ~q:10 Adversary.false_flag in
  Alcotest.(check bool) "agreement" true (Nab.fault_free_agree report);
  Alcotest.(check bool) "validity" true (Nab.valid_outputs report ~inputs);
  Alcotest.(check bool) "DC within budget" true (report.Nab.dc_count <= 2)

let test_nab_throughput_reaches_bound () =
  (* Fault-free steady state: pipelined per-instance time approaches
     L/gamma + L/rho as L grows; measured throughput must be at least 80%
     of the analytic eq. (6) bound on this fixed network (the gap is the
     O(n^a) flag-broadcast overhead, which amortises with L). *)
  let g = k4 in
  let stars = Params.stars g ~source:1 ~f:1 in
  let report, _ = run_nab ~q:3 ~l:4096 ~m:16 Adversary.none in
  Alcotest.(check bool)
    (Printf.sprintf "measured %.2f >= 0.8 * bound %.2f" report.Nab.throughput_pipelined
       stars.Params.throughput_lb)
    true
    (report.Nab.throughput_pipelined >= 0.8 *. stars.Params.throughput_lb);
  (* And it must not exceed the capacity upper bound of Theorem 2. *)
  Alcotest.(check bool)
    (Printf.sprintf "measured %.2f <= capacity %.2f" report.Nab.throughput_pipelined
       stars.Params.capacity_ub)
    true
    (report.Nab.throughput_pipelined <= stars.Params.capacity_ub +. 1e-9)

let test_pipelined_execution () =
  let g = Gen.dumbbell ~clique:3 ~clique_cap:4 ~bridge_cap:2 in
  let config = Nab.config ~l_bits:2048 ~m:16 () in
  let inputs = input_fn ~l:2048 ~seed:31 in
  let r1 = Pipelined.run ~g ~config ~inputs ~q:1 () in
  let r8 = Pipelined.run ~g ~config ~inputs ~q:8 () in
  Alcotest.(check bool) "q=1 delivered" true r1.Pipelined.all_delivered;
  Alcotest.(check bool) "q=8 delivered" true r8.Pipelined.all_delivered;
  (* Filling the pipeline lowers the per-instance cost strictly. *)
  Alcotest.(check bool) "pipeline amortises" true
    (r8.Pipelined.per_instance < r1.Pipelined.per_instance);
  (* Per-instance cost never beats the analytic round core. *)
  Alcotest.(check bool) "core is a floor" true
    (r8.Pipelined.per_instance >= r8.Pipelined.round_core -. 1e-9);
  (* Q instances pipelined beat Q instances run back to back. *)
  let seq = Nab.run ~g ~config ~adversary:Adversary.none ~inputs ~q:8 () in
  Alcotest.(check bool)
    (Printf.sprintf "pipelined %.0f < sequential %.0f" r8.Pipelined.completion
       seq.Nab.total_wall)
    true
    (r8.Pipelined.completion < seq.Nab.total_wall)

let test_pipelined_matches_nab_params () =
  let g = Gen.complete ~n:4 ~cap:2 in
  let config = Nab.config ~l_bits:512 ~m:8 () in
  let r = Pipelined.run ~g ~config ~inputs:(input_fn ~l:512 ~seed:3) ~q:2 () in
  Alcotest.(check int) "gamma" (Params.gamma_k g ~source:1) r.Pipelined.gamma;
  Alcotest.(check int) "rho" (Params.rho_k g ~total_n:4 ~f:1 ~disputes:[])
    r.Pipelined.rho;
  (* gamma = 6 trees in K4 cap 2: some trees are necessarily 2 hops deep
     (only 6 direct source-edge units exist, and the packing needs 18 arcs). *)
  Alcotest.(check bool) "hops within diameter bound" true
    (r.Pipelined.hops >= 1 && r.Pipelined.hops <= 3)

let test_nab_gamma_rho_match_params () =
  let report, _ = run_nab ~q:1 Adversary.none in
  let inst = List.hd report.Nab.instances in
  Alcotest.(check int) "gamma_1" (Params.gamma_k k4 ~source:1) inst.Nab.gamma_k;
  Alcotest.(check int) "rho_1" (Params.rho_k k4 ~total_n:4 ~f:1 ~disputes:[])
    inst.Nab.rho_k

let test_nab_config_validation () =
  let inputs = input_fn ~l:64 ~seed:1 in
  (* The smart constructor rejects bad fields up front... *)
  Alcotest.check_raises "constructor: f < 0"
    (Invalid_argument "Nab.config: f must be >= 0") (fun () ->
      ignore (Nab.config ~f:(-1) ()));
  Alcotest.check_raises "constructor: l_bits = 0"
    (Invalid_argument "Nab.config: l_bits must be positive") (fun () ->
      ignore (Nab.config ~l_bits:0 ()));
  Alcotest.check_raises "constructor: m out of range"
    (Invalid_argument "Nab.config: m must be within 1..61") (fun () ->
      ignore (Nab.config ~m:62 ()));
  Alcotest.check_raises "updater: with_l_bits 0"
    (Invalid_argument "Nab.config: l_bits must be positive") (fun () ->
      ignore (Nab.with_l_bits 0 Nab.default_config));
  (* ...and a hand-rolled record update sneaking past it is still caught at
     session creation, with the same message. *)
  Alcotest.check_raises "l_bits = 0"
    (Invalid_argument "Nab.config: l_bits must be positive") (fun () ->
      ignore
        (Nab.run ~g:k4
           ~config:{ Nab.default_config with l_bits = 0 }
           ~adversary:Adversary.none ~inputs ~q:1 ()));
  Alcotest.check_raises "absent source"
    (Invalid_argument "Nab.create_session: source absent") (fun () ->
      ignore
        (Nab.run ~g:k4
           ~config:{ Nab.default_config with source = 99 }
           ~adversary:Adversary.none ~inputs ~q:1 ()));
  Alcotest.check_raises "bad m"
    (Invalid_argument "Nab.config: m must be within 1..61") (fun () ->
      ignore
        (Nab.run ~g:k4
           ~config:{ Nab.default_config with m = 62; l_bits = 64 }
           ~adversary:Adversary.none ~inputs ~q:1 ()));
  (* Constructor round-trip: defaults plus overrides, updaters compose. *)
  let c = Nab.config ~f:2 ~l_bits:128 () in
  Alcotest.(check int) "override f" 2 c.Nab.f;
  Alcotest.(check int) "override l_bits" 128 c.Nab.l_bits;
  Alcotest.(check int) "default m" Nab.default_config.Nab.m c.Nab.m;
  let c' = Nab.(default_config |> with_seed 42 |> with_m 8) in
  Alcotest.(check int) "with_seed" 42 c'.Nab.seed;
  Alcotest.(check int) "with_m" 8 c'.Nab.m;
  (* Over-greedy adversary rejected. *)
  let greedy =
    { Adversary.none with Adversary.pick_faulty = (fun ~g:_ ~source:_ ~f:_ -> Vset.of_list [ 3; 4 ]) }
  in
  Alcotest.check_raises "too many faulty"
    (Invalid_argument "Nab.create_session: adversary picked too many nodes") (fun () ->
      ignore (Nab.run ~g:k4 ~config:Nab.default_config ~adversary:greedy ~inputs ~q:1 ()))

let test_nab_rejects_bad_networks () =
  let config = Nab.default_config in
  let inputs = input_fn ~l:config.Nab.l_bits ~seed:1 in
  Alcotest.check_raises "ring too sparse"
    (Invalid_argument "Nab.run: need n >= 3f+1 and connectivity >= 2f+1") (fun () ->
      ignore
        (Nab.run ~g:(Gen.ring ~n:6 ~cap:2) ~config ~adversary:Adversary.none ~inputs
           ~q:1 ()))

(* ---------- session API ---------- *)

let test_session_incremental_matches_batch () =
  let config = Nab.config ~f:1 ~l_bits:256 ~m:8 () in
  let inputs = input_fn ~l:256 ~seed:17 in
  let batch = Nab.run ~g:k4 ~config ~adversary:Adversary.ec_liar ~inputs ~q:5 () in
  let ses = Nab.create_session ~g:k4 ~config ~adversary:Adversary.ec_liar () in
  for k = 1 to 5 do
    ignore (Nab.session_broadcast ses (inputs k))
  done;
  let incr_report = Nab.session_report ses in
  Alcotest.(check int) "same dc count" batch.Nab.dc_count incr_report.Nab.dc_count;
  Alcotest.(check (float 1e-9)) "same total time" batch.Nab.total_wall
    incr_report.Nab.total_wall;
  List.iter2
    (fun (b : Nab.instance_report) (i : Nab.instance_report) ->
      List.iter2
        (fun (v1, d1) (v2, d2) ->
          Alcotest.(check int) "node" v1 v2;
          Alcotest.(check bool) "decision" true (Bitvec.equal d1 d2))
        b.Nab.decisions i.Nab.decisions)
    batch.Nab.instances incr_report.Nab.instances;
  Alcotest.(check bool) "graph evolved identically" true
    (Digraph.equal batch.Nab.final_graph (Nab.session_graph ses))

let test_session_state_observable () =
  let config = Nab.config ~f:1 ~l_bits:128 ~m:8 () in
  let ses = Nab.create_session ~g:k4 ~config ~adversary:Adversary.stealthy () in
  Alcotest.(check int) "starts clean" 0 (Nab.session_dc_count ses);
  ignore (Nab.session_broadcast ses (Bitvec.create 128));
  Alcotest.(check int) "one DC after first attack" 1 (Nab.session_dc_count ses);
  Alcotest.(check int) "one dispute" 1 (List.length (Nab.session_disputes ses));
  Alcotest.(check int) "instances recorded" 1 (List.length (Nab.session_instances ses))

(* ---------- consensus on top of NAB ---------- *)

let test_consensus_guarantees () =
  let config = Nab.config ~f:1 ~l_bits:64 ~m:8 () in
  List.iter
    (fun (name, adv) ->
      (* Distinct inputs: agreement must still hold. *)
      let inputs v = Bitvec.of_symbols ~sym_bits:8 (Array.make 8 (v * 17 mod 256)) in
      let r = Consensus.run ~g:k4 ~config ~adversary:adv ~inputs in
      let faulty = adv.Adversary.pick_faulty ~g:k4 ~source:1 ~f:1 in
      Alcotest.(check bool) (name ^ ": agreement") true (Consensus.all_agree r ~faulty);
      (* Identical honest inputs: validity. *)
      let same _ = Bitvec.of_string "same val" in
      let r2 = Consensus.run ~g:k4 ~config ~adversary:adv ~inputs:same in
      Alcotest.(check bool) (name ^ ": validity") true
        (Consensus.valid r2 ~faulty ~inputs:same);
      Alcotest.(check bool) (name ^ ": validity agreement") true
        (Consensus.all_agree r2 ~faulty))
    [
      ("none", Adversary.none);
      ("crash", Adversary.crash);
      ("ec-liar", Adversary.ec_liar);
      ("source-equivocate", Adversary.source_equivocate);
    ]

let test_consensus_vectors_identical () =
  let config = Nab.config ~f:1 ~l_bits:64 ~m:8 () in
  let inputs v = Bitvec.of_symbols ~sym_bits:8 (Array.make 8 v) in
  let r = Consensus.run ~g:k4 ~config ~adversary:Adversary.ec_liar ~inputs in
  let faulty = Adversary.ec_liar.Adversary.pick_faulty ~g:k4 ~source:1 ~f:1 in
  let honest_vectors =
    List.filter (fun (v, _) -> not (Vset.mem v faulty)) r.Consensus.vectors
  in
  match honest_vectors with
  | [] -> Alcotest.fail "no honest nodes"
  | (_, vec0) :: rest ->
      List.iter
        (fun (v, vec) ->
          List.iter2
            (fun (s1, d1) (s2, d2) ->
              Alcotest.(check int) "source" s1 s2;
              Alcotest.(check bool)
                (Printf.sprintf "node %d agrees on source %d" v s1)
                true (Bitvec.equal d1 d2))
            vec0 vec)
        rest

let test_nab_chaos_fuzz =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60 ~name:"chaos adversary fuzz: agreement + validity"
       (QCheck2.Gen.int_range 0 10_000)
       (fun seed ->
         let report, inputs = run_nab ~q:4 ~l:128 (Adversary.chaos ~seed) in
         Nab.fault_free_agree report
         && Nab.valid_outputs report ~inputs
         && report.Nab.dc_count <= 2))

let test_nab_random_graphs_random_adversaries =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60
       ~name:"random feasible graph x random adversary: all guarantees"
       QCheck2.Gen.(pair (int_range 0 200) (int_range 0 100))
       (fun (gseed, aseed) ->
         let g =
           Gen.random_bb_feasible ~n:5 ~f:1 ~p:0.8 ~min_cap:1 ~max_cap:3 ~seed:gseed
         in
         let _, adv = List.nth Adversary.all (aseed mod List.length Adversary.all) in
         let report, inputs = run_nab ~g ~q:3 ~l:128 adv in
         Nab.fault_free_agree report
         && Nab.valid_outputs report ~inputs
         && report.Nab.dc_count <= 2
         && List.for_all
              (fun v ->
                Vset.mem v report.Nab.faulty
                || Digraph.mem_vertex report.Nab.final_graph v)
              (Digraph.vertices g)))

let test_nab_f2_random_graphs =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:10 ~name:"f=2 random feasible graphs x adversaries"
       QCheck2.Gen.(pair (int_range 0 60) (int_range 0 100))
       (fun (gseed, aseed) ->
         let g =
           Gen.random_bb_feasible ~n:8 ~f:2 ~p:0.85 ~min_cap:1 ~max_cap:2 ~seed:gseed
         in
         let _, adv = List.nth Adversary.all (aseed mod List.length Adversary.all) in
         let report, inputs = run_nab ~g ~q:3 ~l:64 ~f:2 adv in
         Nab.fault_free_agree report
         && Nab.valid_outputs report ~inputs
         && report.Nab.dc_count <= 6))

let test_dc_cost_linear_in_l () =
  (* Dispute control is O(L n^b): doubling L should roughly double the DC
     instance's bits (transcript payloads dominate). *)
  let dc_bits l =
    let report, _ = run_nab ~q:1 ~l Adversary.ec_liar in
    let inst = List.hd report.Nab.instances in
    let stat =
      List.find (fun (s : Sim.phase_stat) -> s.Sim.phase = "dispute-control")
        inst.Nab.phase_stats
    in
    float_of_int stat.Sim.bits_total
  in
  let b1 = dc_bits 512 and b2 = dc_bits 1024 in
  let ratio = b2 /. b1 in
  Alcotest.(check bool)
    (Printf.sprintf "DC bits ratio %.2f in [1.5, 2.5]" ratio)
    true
    (ratio >= 1.5 && ratio <= 2.5)

let test_nab_deterministic () =
  let r1, _ = run_nab ~q:3 ~l:128 (Adversary.garbage ~seed:5) in
  let r2, _ = run_nab ~q:3 ~l:128 (Adversary.garbage ~seed:5) in
  Alcotest.(check (float 1e-12)) "same timing" r1.Nab.total_wall r2.Nab.total_wall;
  Alcotest.(check int) "same dc count" r1.Nab.dc_count r2.Nab.dc_count;
  List.iter2
    (fun (i1 : Nab.instance_report) (i2 : Nab.instance_report) ->
      List.iter2
        (fun (v1, d1) (v2, d2) ->
          Alcotest.(check int) "same node" v1 v2;
          Alcotest.(check bool) "same decision" true (Bitvec.equal d1 d2))
        i1.Nab.decisions i2.Nab.decisions)
    r1.Nab.instances r2.Nab.instances

(* The adaptive strategy corrupts, greedily, the node whose exclusion most
   reduces the residual broadcast min-cut; disconnecting picks count as
   not-more-damaging. Mirror that damage function and check the greedy
   optimum is what gets picked. *)
let adaptive_damage g ~source v =
  let g' = Digraph.remove_vertex g v in
  if
    Digraph.mem_vertex g' source
    && List.for_all
         (fun w -> w = source || Maxflow.max_flow g' ~src:source ~dst:w > 0)
         (Digraph.vertices g')
  then Maxflow.broadcast_mincut g' ~src:source
  else max_int

let test_adaptive_minimizes_mincut () =
  let source = 1 in
  let check name g =
    let chosen = Adversary.adaptive ~g ~source ~f:1 in
    Alcotest.(check int) (name ^ ": one corruption") 1 (Vset.cardinal chosen);
    let v = List.hd (Vset.elements chosen) in
    Alcotest.(check bool) (name ^ ": never the source") true (v <> source);
    let best =
      Digraph.vertices g
      |> List.filter (fun w -> w <> source)
      |> List.map (adaptive_damage g ~source)
      |> List.fold_left min max_int
    in
    Alcotest.(check int)
      (name ^ ": picked node minimizes residual broadcast min-cut")
      best (adaptive_damage g ~source v)
  in
  check "k4" k4;
  check "k5" k5;
  check "chords7" chords7;
  check "dumbbell" dumbbell;
  check "random" (Gen.random_bb_feasible ~n:6 ~f:1 ~p:0.8 ~min_cap:1 ~max_cap:3 ~seed:5);
  (* A designed unique optimum: node 3's incident links carry capacity 4,
     every other link capacity 1 — so removing node 3 leaves the weakest
     residual network (a K4 at capacity 1) and must be the greedy pick. *)
  let hub =
    Digraph.of_edges
      (List.concat_map
         (fun (a, b) ->
           let cap = if a = 3 || b = 3 then 4 else 1 in
           [ (a, b, cap); (b, a, cap) ])
         [ (1, 2); (1, 3); (1, 4); (1, 5); (2, 3); (2, 4); (2, 5); (3, 4); (3, 5); (4, 5) ])
  in
  let chosen = Adversary.adaptive ~g:hub ~source ~f:1 in
  Alcotest.(check bool) "hub: picks the capacity hub" true (Vset.mem 3 chosen);
  (* f = 2: two distinct non-source nodes, chosen greedily. *)
  let chosen2 = Adversary.adaptive ~g:k7 ~source ~f:2 in
  Alcotest.(check int) "k7 f=2: two corruptions" 2 (Vset.cardinal chosen2);
  Alcotest.(check bool) "k7 f=2: source honest" true (not (Vset.mem source chosen2))

let () =
  Alcotest.run "protocol"
    [
      ( "phase1",
        [
          Alcotest.test_case "fault-free delivery" `Quick test_phase1_fault_free;
          Alcotest.test_case "corruption is local" `Quick test_phase1_corruption_is_local;
          Alcotest.test_case "timing matches paper" `Quick test_phase1_timing_matches_paper;
          Alcotest.test_case "flood matches scheduled" `Quick
            test_phase1_flood_matches_scheduled;
          Alcotest.test_case "flood with propagation delays" `Quick
            test_phase1_flood_with_delays;
          Alcotest.test_case "scheduled run drains delayed final hop" `Quick
            test_phase1_run_drains_delayed_final_hop;
        ] );
      ( "rlnc",
        [
          Alcotest.test_case "decodes everywhere" `Quick test_rlnc_decodes_everywhere;
          test_rlnc_random_graphs;
          Alcotest.test_case "validates input" `Quick test_rlnc_validates_input;
        ] );
      ( "dispute-control",
        [
          Alcotest.test_case "analyse: consistent claims" `Quick
            test_analyse_consistent_claims;
          Alcotest.test_case "analyse: DC2 mismatch" `Quick test_analyse_dc2_mismatch;
          Alcotest.test_case "analyse: DC3 lying sender" `Quick
            test_analyse_dc3_lying_sender;
          Alcotest.test_case "analyse: false flag convicted" `Quick
            test_analyse_false_flag_convicted;
          Alcotest.test_case "honest never convicted" `Quick test_honest_never_convicted;
          Alcotest.test_case "disputes involve faulty" `Quick
            test_disputes_always_involve_faulty;
        ] );
      ( "nab",
        [
          Alcotest.test_case "all adversaries on K4" `Quick test_nab_all_adversaries_k4;
          Alcotest.test_case "all adversaries on chords7" `Slow
            test_nab_all_adversaries_chords7;
          Alcotest.test_case "f=2 on K7" `Slow test_nab_f2_k7;
          Alcotest.test_case "phase-king backend" `Quick test_nab_phase_king_backend;
          Alcotest.test_case "dumbbell" `Quick test_nab_dumbbell;
          Alcotest.test_case "clean run no DC" `Quick test_nab_clean_run_never_fires_dc;
          Alcotest.test_case "attacker neutralised" `Quick
            test_nab_attacker_eventually_neutralised;
          Alcotest.test_case "faulty source default" `Quick
            test_nab_faulty_source_excluded_default;
          Alcotest.test_case "stealthy exhausts budget" `Quick
            test_nab_stealthy_exhausts_budget;
          Alcotest.test_case "stealthy f=2" `Slow test_nab_stealthy_f2;
          Alcotest.test_case "false flag budget" `Quick test_nab_false_flag_budget;
          Alcotest.test_case "throughput reaches bound" `Quick
            test_nab_throughput_reaches_bound;
          Alcotest.test_case "pipelined execution" `Quick test_pipelined_execution;
          Alcotest.test_case "pipelined params" `Quick test_pipelined_matches_nab_params;
          Alcotest.test_case "params consistency" `Quick test_nab_gamma_rho_match_params;
          Alcotest.test_case "config validation" `Quick test_nab_config_validation;
          Alcotest.test_case "rejects bad networks" `Quick test_nab_rejects_bad_networks;
          Alcotest.test_case "session incremental = batch" `Quick
            test_session_incremental_matches_batch;
          Alcotest.test_case "session state observable" `Quick
            test_session_state_observable;
          Alcotest.test_case "consensus guarantees" `Quick test_consensus_guarantees;
          Alcotest.test_case "consensus vectors identical" `Quick
            test_consensus_vectors_identical;
          test_nab_chaos_fuzz;
          test_nab_random_graphs_random_adversaries;
          test_nab_f2_random_graphs;
          Alcotest.test_case "DC cost linear in L" `Quick test_dc_cost_linear_in_l;
          Alcotest.test_case "deterministic" `Quick test_nab_deterministic;
          Alcotest.test_case "adaptive minimizes min-cut" `Quick
            test_adaptive_minimizes_mincut;
        ] );
    ]
