(* The async transport backend: decision-equivalence with the synchronous
   simulator at zero faults (fixed scenarios + QCheck over sampled
   topologies), and deterministic replay under injected faults. *)

open Nab_core
open Nab_net
open Nab_exp
module Json = Nab_obs.Json

(* Report.run_to_json is lossless (decisions, disputes, timings, per-phase
   stats), so string equality of the encodings is a full differential. *)
let report_json r = Json.to_string (Report.run_to_json r)

let run_backend backend s =
  let s = Scenario.with_backend backend s in
  Nab.run
    ~transport:(Scenario.transport_factory s)
    ~g:(Scenario.graph s) ~config:(Scenario.config s)
    ~adversary:(Scenario.adversary_t s)
    ~inputs:(Scenario.inputs s) ~q:s.Scenario.q ()

let async_zero = Scenario.Async Async_sim.no_faults

(* ---- zero-fault differential ---- *)

let test_zero_fault_fixed () =
  let scenarios =
    Scenario.grid
      ~adversaries:[ "none"; "ec-liar"; "stealthy"; "chaos:7" ]
      ~qs:[ 2 ]
      [
        Scenario.Complete { n = 4; cap = 2 };
        Scenario.Chords { n = 6; cap = 2; chord_cap = 2 };
        Scenario.Twin_cliques { half = 3; spoke_cap = 8; intra_cap = 8; cross_cap = 1 };
      ]
  in
  List.iter
    (fun (s : Scenario.t) ->
      Alcotest.(check string)
        (Printf.sprintf "async no_faults reproduces sync run report (%s)" s.Scenario.id)
        (report_json (run_backend Scenario.Sync s))
        (report_json (run_backend async_zero s)))
    scenarios

let test_zero_fault_qcheck =
  let gen =
    QCheck.make
      ~print:(fun (n, gseed, adv) -> Printf.sprintf "n=%d gseed=%d adv=%s" n gseed adv)
      QCheck.Gen.(
        triple (int_range 4 8) (int_range 0 999)
          (oneofl [ "none"; "ec-liar"; "stealthy"; "garbage:3"; "chaos:11" ]))
  in
  QCheck.Test.make ~count:20 ~name:"async-zero == sync on sampled feasible topologies"
    gen
    (fun (n, gseed, adv) ->
      let s =
        Scenario.make ~adversary:adv ~l_bits:64 ~q:2
          (Scenario.Random_feasible
             { n; f = 1; p = 0.7; min_cap = 1; max_cap = 3; gseed })
          ()
      in
      report_json (run_backend Scenario.Sync s)
      = report_json (run_backend async_zero s))

(* ---- faulted runs: deterministic replay ---- *)

let faulted_spec =
  {
    Async_sim.latency = Async_sim.Uniform (0.0, 40.0);
    jitter = 5.0;
    reorder = 0.2;
    reorder_delay = 0.0;
    crash = [ (4, 900.0) ];
    partitions = [];
    seed = 42;
  }

let faulted_scenario () =
  Scenario.make ~adversary:"ec-liar" ~l_bits:128 ~q:3
    (Scenario.Chords { n = 6; cap = 2; chord_cap = 2 })
    ()

let test_faulted_replay_deterministic () =
  let s = faulted_scenario () in
  let a = report_json (run_backend (Scenario.Async faulted_spec) s) in
  let b = report_json (run_backend (Scenario.Async faulted_spec) s) in
  Alcotest.(check string) "same spec replays byte-identically" a b;
  let other =
    report_json (run_backend (Scenario.Async { faulted_spec with seed = 43 }) s)
  in
  Alcotest.(check bool) "the seed drives the fault draws" true (a <> other)

let test_faulted_regression () =
  (* A committed fingerprint of one faulted run: catches any accidental
     change to the event loop, the draw order, or the fault semantics.
     Regenerate the expected values by printing [summary] if the fault
     model changes deliberately. *)
  let r = run_backend (Scenario.Async faulted_spec) (faulted_scenario ()) in
  let summary =
    Printf.sprintf "dc=%d disputes=%d mismatches=%d wall=%.3f agree=%b" r.Nab.dc_count
      (List.length r.Nab.disputes)
      (List.length (List.filter (fun (i : Nab.instance_report) -> i.Nab.mismatch) r.Nab.instances))
      r.Nab.total_wall (Nab.fault_free_agree r)
  in
  Alcotest.(check string) "committed faulted-run fingerprint"
    "dc=0 disputes=0 mismatches=0 wall=610.315 agree=false" summary

let () =
  Alcotest.run "async"
    [
      ( "zero-fault differential",
        [
          Alcotest.test_case "fixed scenarios" `Quick test_zero_fault_fixed;
          QCheck_alcotest.to_alcotest test_zero_fault_qcheck;
        ] );
      ( "faulted replay",
        [
          Alcotest.test_case "deterministic replay" `Quick test_faulted_replay_deterministic;
          Alcotest.test_case "committed fingerprint" `Quick test_faulted_regression;
        ] );
    ]
