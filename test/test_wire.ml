(* The byte codec's contract (wire.mli):

   - Round-trip: [decode (encode p) = Ok p] for every payload, including
     deep nesting and negative integers (zigzag varints).
   - Overhead bound: for canonical payloads whose integer fields fit in
     28 bits, [8 * String.length (encode p) <= 2 * bits p + 64 * size p].
     The constant is part of the contract — a codec change may lower it
     but must never raise it.
   - Totality: [decode] of arbitrary attacker bytes returns [Ok]/[Error],
     never raises, and never lets a declared element count drive
     allocation beyond the input size. *)

open Nab_net

(* ------------------------- payload generators ------------------------- *)

(* Canonical payloads: every integer fits in 28 bits (4-byte varints), as
   every honest payload in the repository does — the regime where the
   documented overhead bound applies. *)
let gen_canonical =
  let open QCheck.Gen in
  let small_pos = int_bound 0x0FFF_FFFF in
  let sym = int_bound 0xFFFF in
  sized_size (int_bound 5) @@ fix (fun self n ->
      let leaf =
        oneof
          [
            map (fun b -> Wire.Flag b) bool;
            return Wire.Nothing;
            map2
              (fun b data -> Wire.Value { bits = max 1 b; data })
              (int_range 1 4096)
              (map Array.of_list (list_size (int_bound 16) sym));
            map2
              (fun sb data -> Wire.Coded { sym_bits = max 1 sb; data })
              (int_range 1 64)
              (map Array.of_list (list_size (int_bound 16) sym));
          ]
      in
      if n = 0 then leaf
      else
        oneof
          [
            leaf;
            map2
              (fun label body -> Wire.Labeled { label; body })
              (list_size (int_bound 4) (int_bound 255))
              (self (n - 1));
            map (fun ps -> Wire.Batch ps) (list_size (int_bound 4) (self (n - 1)));
            map
              (fun cs -> Wire.Claims cs)
              (list_size (int_bound 3)
                 (map2
                    (fun (c_phase, c_round, c_src, c_dst, dir) c_body ->
                      {
                        Wire.c_phase;
                        c_round;
                        c_src;
                        c_dst;
                        c_dir = (if dir then Wire.Sent else Wire.Received);
                        c_body;
                      })
                    (tup5 (string_size ~gen:(char_range 'a' 'z') (int_bound 8))
                       small_pos (int_bound 64) (int_bound 64) bool)
                    (self (n - 1))));
          ])

(* Arbitrary payloads: any int (negative included — Byzantine senders do
   emit them), any string bytes. Round-trip must still hold exactly. *)
let gen_arbitrary =
  let open QCheck.Gen in
  let any_int =
    oneof [ int; return min_int; return max_int; return (-1); return 0 ]
  in
  sized_size (int_bound 5) @@ fix (fun self n ->
      let leaf =
        oneof
          [
            map (fun b -> Wire.Flag b) bool;
            return Wire.Nothing;
            map2
              (fun b data -> Wire.Value { bits = b; data })
              any_int
              (map Array.of_list (list_size (int_bound 8) any_int));
            map2
              (fun sb data -> Wire.Coded { sym_bits = sb; data })
              any_int
              (map Array.of_list (list_size (int_bound 8) any_int));
          ]
      in
      if n = 0 then leaf
      else
        oneof
          [
            leaf;
            map2
              (fun label body -> Wire.Labeled { label; body })
              (list_size (int_bound 4) any_int)
              (self (n - 1));
            map (fun ps -> Wire.Batch ps) (list_size (int_bound 4) (self (n - 1)));
            map
              (fun cs -> Wire.Claims cs)
              (list_size (int_bound 2)
                 (map2
                    (fun (c_phase, c_round, c_src, c_dst, dir) c_body ->
                      {
                        Wire.c_phase;
                        c_round;
                        c_src;
                        c_dst;
                        c_dir = (if dir then Wire.Sent else Wire.Received);
                        c_body;
                      })
                    (tup5 (string_size (int_bound 12)) any_int any_int any_int
                       bool)
                    (self (n - 1))));
          ])

let arb_canonical = QCheck.make ~print:(Format.asprintf "%a" Wire.pp) gen_canonical
let arb_arbitrary = QCheck.make ~print:(Format.asprintf "%a" Wire.pp) gen_arbitrary

(* --------------------------- overhead bound --------------------------- *)

let within_bound p =
  8 * String.length (Wire.encode p) <= (2 * Wire.bits p) + (64 * Wire.size p)

let bound_report p =
  Format.asprintf "%a: 8*%d bytes vs 2*%d bits + 64*%d nodes" Wire.pp p
    (String.length (Wire.encode p))
    (Wire.bits p) (Wire.size p)

(* One exemplar per constructor, including the worst canonical cases we
   could think of (empty arrays, wide labels, single-claim transcripts):
   if the constant-per-node overhead budget is ever blown, it shows up
   here with the exact arithmetic in the failure message. *)
let test_bound_constructors () =
  let value ~bits n =
    Wire.Value { bits; data = Array.init n (fun i -> (i * 257) land 0xFFFF) }
  in
  let exemplars =
    [
      Wire.Flag true;
      Wire.Flag false;
      Wire.Nothing;
      value ~bits:256 16;
      value ~bits:1 0;
      (* declared bits below physical: the 64*size term must absorb it *)
      value ~bits:1 4;
      Wire.Coded { sym_bits = 16; data = Array.init 8 (fun i -> i * 1000) };
      Wire.Coded { sym_bits = 1; data = [| 0 |] };
      Wire.Labeled { label = [ 0; 1; 2; 3 ]; body = Wire.Flag true };
      Wire.Labeled { label = []; body = Wire.Nothing };
      Wire.Batch [];
      Wire.Batch [ Wire.Flag true; Wire.Nothing; value ~bits:32 2 ];
      Wire.Claims [];
      Wire.Claims
        [
          {
            Wire.c_phase = "ec.exchange";
            c_round = 3;
            c_src = 1;
            c_dst = 2;
            c_dir = Wire.Sent;
            c_body = value ~bits:64 4;
          };
        ];
    ]
  in
  List.iter
    (fun p -> Alcotest.(check bool) (bound_report p) true (within_bound p))
    exemplars

let test_bound_qcheck =
  QCheck.Test.make ~count:500 ~name:"overhead bound on random canonical payloads"
    arb_canonical (fun p ->
      if within_bound p then true else QCheck.Test.fail_report (bound_report p))

(* ----------------------------- round-trip ----------------------------- *)

let test_roundtrip_qcheck =
  QCheck.Test.make ~count:500 ~name:"decode (encode p) = Ok p (arbitrary ints)"
    arb_arbitrary (fun p -> Wire.decode (Wire.encode p) = Ok p)

let deep_nest depth =
  let rec go d acc =
    if d = 0 then acc
    else
      go (d - 1)
        (if d mod 2 = 0 then Wire.Batch [ acc ]
         else Wire.Labeled { label = [ d land 0xFF ]; body = acc })
  in
  go depth (Wire.Flag true)

let test_roundtrip_deep () =
  (* Just under the decoder's depth cap: must round-trip exactly. *)
  let p = deep_nest 190 in
  Alcotest.(check bool) "depth-190 payload round-trips" true
    (Wire.decode (Wire.encode p) = Ok p);
  (* Beyond the cap: encoding still works (the cap protects the decoder's
     stack, not honest senders), decoding is a clean error. *)
  let too_deep = Wire.encode (deep_nest 300) in
  match Wire.decode too_deep with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "depth-300 payload decoded past the nesting cap"

let test_roundtrip_extreme_ints () =
  let p =
    Wire.Batch
      [
        Wire.Value { bits = min_int; data = [| min_int; max_int; -1; 0 |] };
        Wire.Coded { sym_bits = max_int; data = [| min_int + 1 |] };
        Wire.Labeled { label = [ min_int; max_int ]; body = Wire.Nothing };
        Wire.Claims
          [
            {
              Wire.c_phase = "\x00\xff binary phase";
              c_round = min_int;
              c_src = max_int;
              c_dst = min_int;
              c_dir = Wire.Received;
              c_body = Wire.Flag false;
            };
          ];
      ]
  in
  Alcotest.(check bool) "min_int/max_int fields round-trip" true
    (Wire.decode (Wire.encode p) = Ok p)

(* ------------------------- adversarial decode ------------------------- *)

(* decode must be total: whatever the bytes, it returns Ok/Error and never
   raises. Exercised over pure noise, bit-flipped valid encodings, and
   every strict truncation of a valid encoding. *)

let decode_total s =
  match Wire.decode s with Ok _ | Error _ -> true | exception _ -> false

let test_fuzz_random =
  QCheck.Test.make ~count:1000 ~name:"decode of random bytes never raises"
    QCheck.(string_of_size Gen.(int_bound 64))
    decode_total

let test_fuzz_mutated =
  QCheck.Test.make ~count:500 ~name:"decode of corrupted encodings never raises"
    QCheck.(pair arb_canonical (pair small_nat small_nat))
    (fun (p, (pos, delta)) ->
      let b = Bytes.of_string (Wire.encode p) in
      let len = Bytes.length b in
      if len > 0 then begin
        let pos = pos mod len in
        Bytes.set b pos
          (Char.chr ((Char.code (Bytes.get b pos) + 1 + delta) land 0xFF))
      end;
      decode_total (Bytes.to_string b))

let test_fuzz_truncations =
  (* Any strict prefix of a valid encoding must be an Error: if a prefix
     parsed as a complete payload, the full string would have had trailing
     bytes and could not itself have decoded — so Ok on a prefix would
     mean the decoder is not a function of the byte stream. *)
  QCheck.Test.make ~count:200 ~name:"every strict truncation is a decode error"
    arb_canonical (fun p ->
      let s = Wire.encode p in
      let ok = ref true in
      for len = 0 to String.length s - 1 do
        match Wire.decode (String.sub s 0 len) with
        | Error _ -> ()
        | Ok _ -> ok := false
        | exception _ -> ok := false
      done;
      !ok)

let test_oversized_counts () =
  (* A tiny frame declaring a huge element count must be rejected by the
     pre-allocation check — these calls returning (quickly, without OOM)
     is the point of the test. Tags: 2=Value 3=Coded 4=Labeled 5=Batch
     6=Claims; counts are LEB128 uvarints. *)
  let uvarint n =
    let buf = Buffer.create 8 in
    let n = ref n in
    while !n land lnot 0x7f <> 0 do
      Buffer.add_char buf (Char.chr (0x80 lor (!n land 0x7f)));
      n := !n lsr 7
    done;
    Buffer.add_char buf (Char.chr !n);
    Buffer.contents buf
  in
  let billion = uvarint 1_000_000_000 in
  let huge = uvarint max_int in
  let cases =
    [
      ("Value claiming 1e9 elements", "\x02\x00" ^ billion);
      ("Coded claiming max_int elements", "\x03\x02" ^ huge);
      ("Labeled claiming 1e9 labels", "\x04" ^ billion);
      ("Batch claiming 1e9 payloads", "\x05" ^ billion);
      ("Claims claiming 1e9 claims", "\x06" ^ billion);
      ("Batch of Batches each claiming 1e9", "\x05\x02\x05" ^ billion);
    ]
  in
  List.iter
    (fun (label, s) ->
      match Wire.decode s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (label ^ ": decoded instead of rejecting")
      | exception e ->
          Alcotest.fail (label ^ ": raised " ^ Printexc.to_string e))
    cases

let test_trailing_garbage () =
  let s = Wire.encode (Wire.Flag true) ^ "\x00" in
  match Wire.decode s with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing byte accepted"

(* -------------------------------- main -------------------------------- *)

let () =
  Alcotest.run "wire"
    [
      ( "overhead bound",
        [
          Alcotest.test_case "every constructor" `Quick test_bound_constructors;
          QCheck_alcotest.to_alcotest test_bound_qcheck;
        ] );
      ( "round-trip",
        [
          QCheck_alcotest.to_alcotest test_roundtrip_qcheck;
          Alcotest.test_case "deep nesting and the depth cap" `Quick
            test_roundtrip_deep;
          Alcotest.test_case "extreme integers" `Quick test_roundtrip_extreme_ints;
        ] );
      ( "adversarial decode",
        [
          QCheck_alcotest.to_alcotest test_fuzz_random;
          QCheck_alcotest.to_alcotest test_fuzz_mutated;
          QCheck_alcotest.to_alcotest test_fuzz_truncations;
          Alcotest.test_case "oversized declared counts" `Quick
            test_oversized_counts;
          Alcotest.test_case "trailing garbage" `Quick test_trailing_garbage;
        ] );
    ]
