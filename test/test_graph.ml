(* Tests for the graph substrate: Digraph, Ugraph, Maxflow, Stoer_wagner,
   Connectivity, Arborescence, Spanning, Gen. *)

open Nab_graph

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Random small symmetric digraph generator for property tests. *)
let graph_gen =
  QCheck2.Gen.(
    pair (int_range 3 7) (int_range 0 10_000) >>= fun (n, seed) ->
    return (Gen.random_connected ~n ~p:0.7 ~min_cap:1 ~max_cap:4 ~seed))

(* ---------- Digraph basics ---------- *)

let test_digraph_crud () =
  let g = Digraph.of_edges ~vertices:[ 9 ] [ (1, 2, 3); (2, 1, 1); (2, 3, 2) ] in
  Alcotest.(check int) "vertices" 4 (Digraph.num_vertices g);
  Alcotest.(check int) "edges" 3 (Digraph.num_edges g);
  Alcotest.(check int) "cap" 3 (Digraph.cap g 1 2);
  Alcotest.(check int) "missing cap" 0 (Digraph.cap g 3 1);
  Alcotest.(check int) "total capacity" 6 (Digraph.total_capacity g);
  Alcotest.(check (list int)) "neighbors of 2" [ 1; 3 ] (Digraph.neighbors g 2);
  Alcotest.(check int) "out degree" 2 (Digraph.out_degree g 2);
  Alcotest.(check int) "in degree" 1 (Digraph.in_degree g 2);
  let g' = Digraph.remove_vertex g 2 in
  Alcotest.(check int) "vertex removal drops edges" 0 (Digraph.num_edges g');
  Alcotest.(check bool) "vertex gone" false (Digraph.mem_vertex g' 2);
  let g'' = Digraph.remove_pair g 1 2 in
  Alcotest.(check int) "remove_pair kills both" 1 (Digraph.num_edges g'')

let test_digraph_validation () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Digraph.add_edge: capacity must be positive") (fun () ->
      ignore (Digraph.add_edge Digraph.empty ~src:1 ~dst:2 ~cap:0));
  Alcotest.check_raises "self loop" (Invalid_argument "Digraph.add_edge: self-loop")
    (fun () -> ignore (Digraph.add_edge Digraph.empty ~src:1 ~dst:1 ~cap:1))

let test_induced () =
  let g = Gen.complete ~n:5 ~cap:1 in
  let sub = Digraph.induced g (Vset.of_list [ 1; 2; 3 ]) in
  Alcotest.(check int) "induced vertices" 3 (Digraph.num_vertices sub);
  Alcotest.(check int) "induced edges" 6 (Digraph.num_edges sub);
  Alcotest.(check bool) "is subgraph" true (Digraph.subgraph_p g ~sub)

let test_reachable () =
  let g = Digraph.of_edges [ (1, 2, 1); (2, 3, 1) ] in
  Alcotest.(check bool) "1 reaches 3" true (Vset.mem 3 (Digraph.reachable g 1));
  Alcotest.(check bool) "3 reaches nothing" false (Vset.mem 1 (Digraph.reachable g 3));
  Alcotest.(check bool) "not strongly connected" false (Digraph.is_strongly_connected g);
  Alcotest.(check bool) "complete strongly connected" true
    (Digraph.is_strongly_connected (Gen.complete ~n:4 ~cap:1))

(* ---------- Ugraph ---------- *)

let test_ugraph_of_digraph () =
  let d = Digraph.of_edges [ (1, 2, 2); (2, 1, 3); (2, 3, 1) ] in
  let u = Ugraph.of_digraph d in
  Alcotest.(check int) "sum of directions" 5 (Ugraph.cap u 1 2);
  Alcotest.(check int) "one direction only" 1 (Ugraph.cap u 3 2);
  Alcotest.(check int) "undirected edge count" 2 (Ugraph.num_edges u)

let test_ugraph_symmetry =
  qtest "of_digraph symmetric caps" graph_gen (fun g ->
      let u = Ugraph.of_digraph g in
      List.for_all (fun (a, b, c) -> Ugraph.cap u b a = c) (Ugraph.edges u))

(* ---------- Maxflow ---------- *)

let test_figure1_mincuts () =
  (* The exact numbers the paper states for Figure 1(a). *)
  let g = Gen.figure1a in
  Alcotest.(check int) "MINCUT(1,2)" 2 (Maxflow.max_flow g ~src:1 ~dst:2);
  Alcotest.(check int) "MINCUT(1,3)" 3 (Maxflow.max_flow g ~src:1 ~dst:3);
  Alcotest.(check int) "MINCUT(1,4)" 2 (Maxflow.max_flow g ~src:1 ~dst:4);
  Alcotest.(check int) "gamma" 2 (Maxflow.broadcast_mincut g ~src:1);
  Alcotest.(check bool) "no edge 2-4" true
    ((not (Digraph.mem_edge g 2 4)) && not (Digraph.mem_edge g 4 2))

let test_maxflow_disconnected () =
  let g = Digraph.of_edges ~vertices:[ 3 ] [ (1, 2, 5) ] in
  Alcotest.(check int) "unreachable" 0 (Maxflow.max_flow g ~src:1 ~dst:3);
  Alcotest.(check int) "broadcast 0" 0 (Maxflow.broadcast_mincut g ~src:1)

let cut_capacity g side =
  Digraph.fold_edges
    (fun s d c acc -> if Vset.mem s side && not (Vset.mem d side) then acc + c else acc)
    g 0

let test_maxflow_equals_cut =
  qtest "max flow = capacity of returned min cut" graph_gen (fun g ->
      let verts = Digraph.vertices g in
      let src = List.hd verts and dst = List.nth verts (List.length verts - 1) in
      let v, side = Maxflow.min_cut g ~src ~dst in
      Vset.mem src side && (not (Vset.mem dst side)) && cut_capacity g side = v)

let test_flow_conservation =
  qtest "flow conservation and capacity" graph_gen (fun g ->
      let verts = Digraph.vertices g in
      let src = List.hd verts and dst = List.nth verts (List.length verts - 1) in
      let v, flows = Maxflow.max_flow_edges g ~src ~dst in
      let within_caps =
        List.for_all (fun ((s, d), fl) -> fl >= 0 && fl <= Digraph.cap g s d) flows
      in
      let net w =
        List.fold_left
          (fun acc ((s, d), fl) ->
            if s = w then acc + fl else if d = w then acc - fl else acc)
          0 flows
      in
      within_caps && net src = v && net dst = -v
      && List.for_all (fun w -> w = src || w = dst || net w = 0) verts)

let test_flow_decompose =
  qtest "flow decomposes into value-many paths" graph_gen (fun g ->
      let verts = Digraph.vertices g in
      let src = List.hd verts and dst = List.nth verts (List.length verts - 1) in
      let v, flows = Maxflow.max_flow_edges g ~src ~dst in
      let paths = Maxflow.flow_decompose g flows ~src ~dst in
      List.length paths = v
      && List.for_all
           (fun p ->
             List.hd p = src
             && List.nth p (List.length p - 1) = dst
             &&
             let rec edges_ok = function
               | a :: (b :: _ as rest) -> Digraph.mem_edge g a b && edges_ok rest
               | _ -> true
             in
             edges_ok p)
           paths)

let test_min_cut_edges () =
  let g = Gen.figure1a in
  let v, cut = Maxflow.min_cut_edges g ~src:1 ~dst:4 in
  Alcotest.(check int) "cut value" 2 v;
  let total = List.fold_left (fun acc (s, d) -> acc + Digraph.cap g s d) 0 cut in
  Alcotest.(check int) "cut edges sum to value" 2 total

(* ---------- Stoer-Wagner ---------- *)

let test_stoer_wagner_known () =
  (* Paper example: U for the two Omega subgraphs of Figure 1(b). *)
  let gb = Gen.figure1b in
  let u124 = Ugraph.of_digraph (Digraph.induced gb (Vset.of_list [ 1; 2; 4 ])) in
  let u134 = Ugraph.of_digraph (Digraph.induced gb (Vset.of_list [ 1; 3; 4 ])) in
  Alcotest.(check int) "U {1,2,4}" 2 (Stoer_wagner.min_cut_value u124);
  Alcotest.(check int) "U {1,3,4}" 3 (Stoer_wagner.min_cut_value u134)

let test_stoer_wagner_duplicate_edges () =
  (* The seed adjacency matrix overwrote on a repeated pair, so a
     multigraph-style edge list lost all but the last entry. (1,2) is split
     1 + 1 below and is on the min cut: overwriting yields 4, the true
     value is 5. Cross-checked against Karger on the summed simple graph. *)
  let vertices = [ 1; 2; 3 ] in
  let dup = [ (1, 2, 1); (1, 2, 1); (2, 3, 3); (1, 3, 3) ] in
  let summed = Ugraph.of_edges [ (1, 2, 2); (2, 3, 3); (1, 3, 3) ] in
  let v_dup, side = Stoer_wagner.min_cut_edges ~vertices dup in
  Alcotest.(check int) "duplicates accumulate" 5 v_dup;
  Alcotest.(check int) "matches simple-graph Stoer-Wagner" v_dup
    (Stoer_wagner.min_cut_value summed);
  let v_karger, _ =
    Karger.min_cut summed ~trials:(Karger.recommended_trials summed) ~seed:13
  in
  Alcotest.(check int) "matches Karger on the summed graph" v_dup v_karger;
  let crossing =
    List.fold_left
      (fun acc (a, b, c) -> if Vset.mem a side <> Vset.mem b side then acc + c else acc)
      0 dup
  in
  Alcotest.(check int) "returned side realises the value" v_dup crossing

let test_stoer_wagner_duplicate_edges_random =
  qtest ~count:40 "split edge = summed edge (Karger cross-check)" graph_gen
    (fun g ->
      let u = Ugraph.of_digraph g in
      (* Split every edge into two entries summing to its capacity. *)
      let split =
        Ugraph.fold_edges
          (fun a b c acc ->
            if c > 1 then (a, b, 1) :: (a, b, c - 1) :: acc else (a, b, c) :: acc)
          u []
      in
      let v_split, _ = Stoer_wagner.min_cut_edges ~vertices:(Ugraph.vertices u) split in
      let sw = Stoer_wagner.min_cut_value u in
      let v_karger, _ = Karger.min_cut u ~trials:(Karger.recommended_trials u) ~seed:7 in
      v_split = sw && v_split = v_karger)

let test_stoer_wagner_vs_pairwise =
  qtest ~count:60 "global min cut = min pairwise min cut" graph_gen (fun g ->
      let u = Ugraph.of_digraph g in
      let verts = Ugraph.vertices u in
      let v0 = List.hd verts in
      let pairwise =
        List.fold_left
          (fun acc v ->
            if v = v0 then acc else min acc (Maxflow.pair_mincut_undirected u v0 v))
          max_int (List.tl verts)
      in
      (* The global min cut separates v0 from someone, so the min over pairs
         with v0 fixed equals the global value. *)
      Stoer_wagner.min_cut_value u = pairwise)

let test_stoer_wagner_partition =
  qtest ~count:60 "returned side realises the value" graph_gen (fun g ->
      let u = Ugraph.of_digraph g in
      let v, side = Stoer_wagner.min_cut u in
      let crossing =
        Ugraph.fold_edges
          (fun a b c acc -> if Vset.mem a side <> Vset.mem b side then acc + c else acc)
          u 0
      in
      crossing = v
      && (not (Vset.is_empty side))
      && Vset.cardinal side < Ugraph.num_vertices u)

(* ---------- Connectivity ---------- *)

let test_connectivity_known () =
  Alcotest.(check int) "complete K5" 4
    (Connectivity.vertex_connectivity (Gen.complete ~n:5 ~cap:1));
  Alcotest.(check int) "ring" 2 (Connectivity.vertex_connectivity (Gen.ring ~n:6 ~cap:1));
  Alcotest.(check int) "ring with chords" 4
    (Connectivity.vertex_connectivity (Gen.ring_with_chords ~n:7 ~cap:1 ~chord_cap:1));
  Alcotest.(check int) "figure1a" 1 (Connectivity.vertex_connectivity Gen.figure1a);
  Alcotest.(check bool) "dumbbell is 3-connected" true
    (Connectivity.vertex_connectivity (Gen.dumbbell ~clique:4 ~clique_cap:4 ~bridge_cap:1)
    >= 3)

let test_disjoint_paths_disjoint =
  qtest ~count:60 "paths are internally node-disjoint" graph_gen (fun g ->
      let verts = Digraph.vertices g in
      let src = List.hd verts and dst = List.nth verts (List.length verts - 1) in
      let paths = Connectivity.disjoint_paths g ~src ~dst in
      let internals =
        List.map (fun p -> List.filter (fun v -> v <> src && v <> dst) p) paths
      in
      let all = List.concat internals in
      List.length paths = Connectivity.max_disjoint_paths g ~src ~dst
      && List.length all = List.length (List.sort_uniq compare all)
      && List.for_all
           (fun p ->
             let rec ok = function
               | a :: (b :: _ as rest) -> Digraph.mem_edge g a b && ok rest
               | _ -> true
             in
             List.hd p = src && List.nth p (List.length p - 1) = dst && ok p)
           paths)

let test_meets_requirement () =
  Alcotest.(check bool) "K4 f=1" true
    (Connectivity.meets_requirement (Gen.complete ~n:4 ~cap:1) ~f:1);
  Alcotest.(check bool) "K4 f=2 (too few nodes)" false
    (Connectivity.meets_requirement (Gen.complete ~n:4 ~cap:1) ~f:2);
  Alcotest.(check bool) "ring f=1 (connectivity 2 < 3)" false
    (Connectivity.meets_requirement (Gen.ring ~n:6 ~cap:1) ~f:1)

(* ---------- Arborescence ---------- *)

let test_figure2_packing () =
  let g = Gen.figure2 in
  Alcotest.(check int) "fig2 gamma" 2 (Maxflow.broadcast_mincut g ~src:1);
  let trees = Arborescence.pack g ~root:1 ~k:2 in
  Alcotest.(check int) "two trees" 2 (List.length trees);
  (match Arborescence.verify g ~root:1 trees with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* Both trees must use edge (1,2), as the paper's Figure 2(c) shows. *)
  List.iter
    (fun t -> Alcotest.(check bool) "uses (1,2)" true (List.mem (1, 2) t))
    trees

let test_pack_random =
  qtest ~count:40 "packing gamma trees always verifies" graph_gen (fun g ->
      let gamma = Maxflow.broadcast_mincut g ~src:1 in
      gamma = 0
      ||
      let trees = Arborescence.pack g ~root:1 ~k:gamma in
      List.length trees = gamma && Arborescence.verify g ~root:1 trees = Ok ())

let test_pack_infeasible () =
  let g = Gen.figure2 in
  Alcotest.check_raises "k too large"
    (Invalid_argument "Arborescence.pack: k exceeds the root broadcast min-cut")
    (fun () -> ignore (Arborescence.pack g ~root:1 ~k:3))

let test_tree_navigation () =
  let t = [ (1, 2); (1, 4); (2, 3) ] in
  Alcotest.(check (list int)) "children of 1" [ 2; 4 ] (Arborescence.children t 1);
  Alcotest.(check (option int)) "parent of 3" (Some 2) (Arborescence.parent t 3);
  Alcotest.(check (option int)) "root has no parent" None (Arborescence.parent t 1);
  Alcotest.(check int) "depth" 2 (Arborescence.depth t ~root:1);
  Alcotest.(check (list (pair int int)))
    "by depth"
    [ (1, 0); (2, 1); (4, 1); (3, 2) ]
    (Arborescence.vertices_by_depth t ~root:1)

let test_verify_rejects_bad () =
  let g = Gen.figure2 in
  (* A "tree" missing node 3. *)
  (match Arborescence.verify g ~root:1 [ [ (1, 2); (2, 4) ] ] with
  | Ok () -> Alcotest.fail "accepted non-spanning tree"
  | Error _ -> ());
  (* Capacity overuse: (1,4) has capacity 1 but is used twice. *)
  let t = [ (1, 2); (1, 4); (4, 3) ] in
  match Arborescence.verify g ~root:1 [ t; t ] with
  | Ok () -> Alcotest.fail "accepted capacity violation"
  | Error _ -> ()

(* ---------- Spanning ---------- *)

let test_bfs_tree () =
  let u = Ugraph.of_digraph (Gen.complete ~n:5 ~cap:1) in
  let t = Spanning.bfs_tree u ~root:1 in
  Alcotest.(check bool) "spanning" true (Spanning.is_spanning_tree u t);
  Alcotest.(check int) "n-1 edges" 4 (List.length t)

let test_tree_packing_bound () =
  let u = Ugraph.of_digraph (Gen.complete ~n:4 ~cap:2) in
  (* K4 with undirected cap 4 per edge: global min cut 12, bound 6. *)
  let bound = Spanning.count_disjoint_trees_lower_bound u in
  Alcotest.(check int) "bound" 6 bound;
  match Spanning.greedy_disjoint_trees u ~k:bound with
  | None -> Alcotest.fail "greedy failed at the guaranteed bound"
  | Some trees ->
      Alcotest.(check int) "count" bound (List.length trees);
      List.iter
        (fun t -> Alcotest.(check bool) "each spans" true (Spanning.is_spanning_tree u t))
        trees

let test_greedy_trees_respect_capacity =
  qtest ~count:30 "greedy trees use each edge within capacity" graph_gen (fun g ->
      let u = Ugraph.of_digraph g in
      let k = Spanning.count_disjoint_trees_lower_bound u in
      k = 0
      ||
      match Spanning.greedy_disjoint_trees u ~k with
      | None -> true (* greedy is best-effort; the bound is existential *)
      | Some trees ->
          let usage = Hashtbl.create 16 in
          List.iter
            (List.iter (fun (a, b) ->
                 let key = (min a b, max a b) in
                 Hashtbl.replace usage key
                   (1 + try Hashtbl.find usage key with Not_found -> 0)))
            trees;
          Hashtbl.fold (fun (a, b) used acc -> acc && used <= Ugraph.cap u a b) usage true)

(* ---------- Gomory-Hu ---------- *)

let test_gomory_hu_matches_pairwise =
  qtest ~count:50 "Gomory-Hu min cuts = pairwise max flow" graph_gen (fun g ->
      let u = Ugraph.of_digraph g in
      let gh = Gomory_hu.build u in
      let verts = Ugraph.vertices u in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              a >= b || Gomory_hu.min_cut gh a b = Maxflow.pair_mincut_undirected u a b)
            verts)
        verts)

let test_gomory_hu_global =
  qtest ~count:50 "Gomory-Hu global = Stoer-Wagner" graph_gen (fun g ->
      let u = Ugraph.of_digraph g in
      Gomory_hu.global_min_cut (Gomory_hu.build u) = Stoer_wagner.min_cut_value u)

let test_gomory_hu_shape () =
  let u = Ugraph.of_digraph (Gen.complete ~n:5 ~cap:1) in
  let gh = Gomory_hu.build u in
  Alcotest.(check int) "n-1 tree edges" 4 (List.length (Gomory_hu.tree_edges gh));
  Alcotest.check_raises "same vertex"
    (Invalid_argument "Gomory_hu.min_cut: identical vertices") (fun () ->
      ignore (Gomory_hu.min_cut gh 1 1))

(* ---------- Edmonds-Karp cross-check ---------- *)

let test_edmonds_karp_matches_dinic =
  qtest ~count:80 "Edmonds-Karp = Dinic on all pairs" graph_gen (fun g ->
      let verts = Digraph.vertices g in
      List.for_all
        (fun s ->
          List.for_all
            (fun d ->
              s = d
              || Edmonds_karp.max_flow g ~src:s ~dst:d = Maxflow.max_flow g ~src:s ~dst:d)
            verts)
        verts)

(* ---------- Karger ---------- *)

let test_karger_upper_bound =
  qtest ~count:30 "every Karger trial is an upper bound" graph_gen (fun g ->
      let u = Ugraph.of_digraph g in
      let sw = Stoer_wagner.min_cut_value u in
      let st = Random.State.make [| 77 |] in
      List.for_all (fun _ -> fst (Karger.one_trial u st) >= sw) (List.init 10 Fun.id))

let test_karger_finds_min_whp =
  qtest ~count:20 "enough Karger trials find the min cut" graph_gen (fun g ->
      let u = Ugraph.of_digraph g in
      let v, side = Karger.min_cut u ~trials:(Karger.recommended_trials u) ~seed:5 in
      let crossing =
        Ugraph.fold_edges
          (fun a b c acc -> if Vset.mem a side <> Vset.mem b side then acc + c else acc)
          u 0
      in
      v = Stoer_wagner.min_cut_value u && crossing = v)

(* ---------- Graphfile ---------- *)

let test_graphfile_roundtrip =
  qtest ~count:50 "parse(print g) = g" graph_gen (fun g ->
      match Graphfile.parse (Graphfile.print g) with
      | Ok g' -> Digraph.equal g g'
      | Error _ -> false)

let test_graphfile_parse () =
  let doc = "# demo\nnode 9\n\nedge 1 2 3 # inline comment\nbiedge 2 3 1\n" in
  (match Graphfile.parse doc with
  | Error e -> Alcotest.fail e
  | Ok g ->
      Alcotest.(check int) "vertices" 4 (Digraph.num_vertices g);
      Alcotest.(check int) "cap 1->2" 3 (Digraph.cap g 1 2);
      Alcotest.(check int) "biedge both ways" 1 (Digraph.cap g 3 2));
  (match Graphfile.parse "edge 1 2\n" with
  | Error e -> Alcotest.(check bool) "line number" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "accepted malformed edge");
  match Graphfile.parse "edge 1 1 4\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted self-loop"

let test_graphfile_never_crashes =
  qtest ~count:300 "parser totals on arbitrary junk"
    QCheck2.Gen.(string_size ~gen:printable (int_bound 80))
    (fun junk ->
      match Graphfile.parse junk with Ok _ | Error _ -> true)

let test_graphfile_isolated_nodes () =
  let g = Digraph.add_vertex (Gen.figure2) 42 in
  match Graphfile.parse (Graphfile.print g) with
  | Ok g' -> Alcotest.(check bool) "isolated survives" true (Digraph.mem_vertex g' 42)
  | Error e -> Alcotest.fail e

(* ---------- Gen / Dot ---------- *)

let test_generators_shape () =
  Alcotest.(check int) "complete edges" 20 (Digraph.num_edges (Gen.complete ~n:5 ~cap:1));
  Alcotest.(check int) "ring edges" 12 (Digraph.num_edges (Gen.ring ~n:6 ~cap:1));
  let d = Gen.dumbbell ~clique:4 ~clique_cap:8 ~bridge_cap:1 in
  Alcotest.(check int) "dumbbell nodes" 8 (Digraph.num_vertices d);
  let s = Gen.star_mesh ~n:5 ~spoke_cap:4 ~mesh_cap:1 in
  Alcotest.(check int) "star spoke cap" 4 (Digraph.cap s 1 2);
  Alcotest.(check int) "star mesh cap" 1 (Digraph.cap s 2 3)

let test_hypercube_torus () =
  let h3 = Gen.hypercube ~dims:3 ~cap:1 in
  Alcotest.(check int) "Q3 nodes" 8 (Digraph.num_vertices h3);
  Alcotest.(check int) "Q3 edges" 24 (Digraph.num_edges h3);
  Alcotest.(check int) "Q3 connectivity = dims" 3 (Connectivity.vertex_connectivity h3);
  List.iter
    (fun v -> Alcotest.(check int) "3-regular" 3 (List.length (Digraph.neighbors h3 v)))
    (Digraph.vertices h3);
  let t = Gen.torus ~rows:3 ~cols:4 ~cap:2 in
  Alcotest.(check int) "torus nodes" 12 (Digraph.num_vertices t);
  List.iter
    (fun v -> Alcotest.(check int) "4-regular" 4 (List.length (Digraph.neighbors t v)))
    (Digraph.vertices t);
  Alcotest.(check int) "torus connectivity" 4 (Connectivity.vertex_connectivity t);
  (* Both satisfy the BB requirement at f = 1. *)
  Alcotest.(check bool) "Q3 feasible f=1" true (Connectivity.meets_requirement h3 ~f:1);
  Alcotest.(check bool) "torus feasible f=1" true (Connectivity.meets_requirement t ~f:1)

let test_random_feasible =
  qtest ~count:20 "random_bb_feasible meets requirements"
    (QCheck2.Gen.int_range 0 1000)
    (fun seed ->
      let g = Gen.random_bb_feasible ~n:5 ~f:1 ~p:0.8 ~min_cap:1 ~max_cap:3 ~seed in
      Connectivity.meets_requirement g ~f:1 && Digraph.is_strongly_connected g)

(* The campaign samplers lean on random_bb_feasible producing networks with
   vertex connectivity >= 2f+1 whatever the seed and density — check the
   connectivity value itself, not just the packaged predicate, across both
   fault budgets and a sparse edge probability. *)
let test_random_feasible_connectivity =
  qtest ~count:25 "random_bb_feasible is 2f+1-connected across seeds"
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 0 1))
    (fun (seed, fidx) ->
      let f = 1 + fidx in
      let n = (3 * f) + 1 + (seed mod 3) in
      let g = Gen.random_bb_feasible ~n ~f ~p:0.5 ~min_cap:1 ~max_cap:4 ~seed in
      Digraph.num_vertices g = n
      && Connectivity.vertex_connectivity g >= (2 * f) + 1
      && Connectivity.meets_requirement g ~f)

let test_metrics () =
  let m = Metrics.compute (Gen.complete ~n:5 ~cap:3) in
  Alcotest.(check int) "nodes" 5 m.Metrics.nodes;
  Alcotest.(check int) "edges" 20 m.Metrics.edges;
  Alcotest.(check int) "total capacity" 60 m.Metrics.total_capacity;
  Alcotest.(check int) "diameter" 1 m.Metrics.diameter;
  Alcotest.(check int) "connectivity" 4 m.Metrics.vertex_connectivity;
  Alcotest.(check int) "max f: n>=3f+1 and kappa>=2f+1" 1 m.Metrics.max_f;
  let ring = Metrics.compute (Gen.ring ~n:6 ~cap:1) in
  Alcotest.(check int) "ring diameter" 3 ring.Metrics.diameter;
  Alcotest.(check int) "ring tolerates nothing" 0 ring.Metrics.max_f;
  let dangling = Digraph.of_edges [ (1, 2, 1) ] in
  Alcotest.(check int) "one-way diameter -1" (-1) (Metrics.compute dangling).Metrics.diameter;
  Alcotest.(check int) "eccentricity" 2
    (Metrics.eccentricity (Gen.ring ~n:5 ~cap:1) 1)

let test_dot_output () =
  let s = Dot.of_digraph ~name:"test" Gen.figure2 in
  Alcotest.(check bool) "digraph header" true (contains_sub s "digraph test");
  Alcotest.(check bool) "directed edge" true (contains_sub s "1 -> 2");
  let u = Dot.of_ugraph (Ugraph.of_digraph Gen.figure2) in
  Alcotest.(check bool) "undirected edges" true (contains_sub u "--");
  let h = Dot.of_digraph ~highlight:[ (1, 2) ] Gen.figure2 in
  Alcotest.(check bool) "highlight red" true (contains_sub h "color=red")

let () =
  Alcotest.run "graph"
    [
      ( "digraph",
        [
          Alcotest.test_case "crud" `Quick test_digraph_crud;
          Alcotest.test_case "validation" `Quick test_digraph_validation;
          Alcotest.test_case "induced" `Quick test_induced;
          Alcotest.test_case "reachable" `Quick test_reachable;
        ] );
      ( "ugraph",
        [
          Alcotest.test_case "of_digraph" `Quick test_ugraph_of_digraph;
          test_ugraph_symmetry;
        ] );
      ( "maxflow",
        [
          Alcotest.test_case "figure 1 mincuts" `Quick test_figure1_mincuts;
          Alcotest.test_case "disconnected" `Quick test_maxflow_disconnected;
          test_maxflow_equals_cut;
          test_flow_conservation;
          test_flow_decompose;
          Alcotest.test_case "min cut edges" `Quick test_min_cut_edges;
        ] );
      ( "stoer-wagner",
        [
          Alcotest.test_case "paper example" `Quick test_stoer_wagner_known;
          Alcotest.test_case "duplicate edge pairs accumulate" `Quick
            test_stoer_wagner_duplicate_edges;
          test_stoer_wagner_duplicate_edges_random;
          test_stoer_wagner_vs_pairwise;
          test_stoer_wagner_partition;
        ] );
      ( "connectivity",
        [
          Alcotest.test_case "known values" `Quick test_connectivity_known;
          test_disjoint_paths_disjoint;
          Alcotest.test_case "meets requirement" `Quick test_meets_requirement;
        ] );
      ( "arborescence",
        [
          Alcotest.test_case "figure 2 packing" `Quick test_figure2_packing;
          test_pack_random;
          Alcotest.test_case "infeasible k" `Quick test_pack_infeasible;
          Alcotest.test_case "navigation" `Quick test_tree_navigation;
          Alcotest.test_case "verify rejects bad" `Quick test_verify_rejects_bad;
        ] );
      ( "spanning",
        [
          Alcotest.test_case "bfs tree" `Quick test_bfs_tree;
          Alcotest.test_case "packing bound on K4" `Quick test_tree_packing_bound;
          test_greedy_trees_respect_capacity;
        ] );
      ( "gomory-hu",
        [
          test_gomory_hu_matches_pairwise;
          test_gomory_hu_global;
          Alcotest.test_case "tree shape" `Quick test_gomory_hu_shape;
        ] );
      ("edmonds-karp", [ test_edmonds_karp_matches_dinic ]);
      ( "karger",
        [ test_karger_upper_bound; test_karger_finds_min_whp ] );
      ( "graphfile",
        [
          test_graphfile_roundtrip;
          test_graphfile_never_crashes;
          Alcotest.test_case "parse" `Quick test_graphfile_parse;
          Alcotest.test_case "isolated nodes" `Quick test_graphfile_isolated_nodes;
        ] );
      ( "gen",
        [
          Alcotest.test_case "generator shapes" `Quick test_generators_shape;
          Alcotest.test_case "hypercube and torus" `Quick test_hypercube_torus;
          Alcotest.test_case "metrics" `Quick test_metrics;
          test_random_feasible;
          test_random_feasible_connectivity;
          Alcotest.test_case "dot output" `Quick test_dot_output;
        ] );
    ]
