(* Tests for Params (gamma_k, Omega_k, U_k, rho_k, Gamma, gamma*, rho*,
   Theorem 2/3 bounds) and Pipeline (Figure 3). *)

open Nab_graph
open Nab_core

let qtest ?(count = 40) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let feasible_gen =
  QCheck2.Gen.(
    int_range 0 500 >>= fun seed ->
    return (Gen.random_bb_feasible ~n:5 ~f:1 ~p:0.8 ~min_cap:1 ~max_cap:3 ~seed))

(* ---------- paper's worked example (Figure 1) ---------- *)

let test_paper_example () =
  (* gamma for Figure 1(a) is 2 (Section 2). *)
  Alcotest.(check int) "gamma" 2 (Params.gamma_k Gen.figure1a ~source:1);
  (* With nodes 2,3 in dispute (Figure 1(b)), n=4, f=1: Omega_k consists of
     the node sets {1,2,4} and {1,3,4}, and U_k = 2 (Section 3). *)
  let disputes = [ Params.norm_dispute 3 2 ] in
  let omega = Params.omega_k Gen.figure1b ~total_n:4 ~f:1 ~disputes in
  Alcotest.(check (list (list int)))
    "Omega_k"
    [ [ 1; 2; 4 ]; [ 1; 3; 4 ] ]
    (List.map Vset.elements omega);
  Alcotest.(check int) "U_k" 2 (Params.u_k Gen.figure1b ~total_n:4 ~f:1 ~disputes);
  Alcotest.(check int) "rho_k" 1 (Params.rho_k Gen.figure1b ~total_n:4 ~f:1 ~disputes)

let test_norm_dispute () =
  Alcotest.(check (pair int int)) "normalised" (2, 5) (Params.norm_dispute 5 2);
  Alcotest.check_raises "self" (Invalid_argument "Params.norm_dispute: self-dispute")
    (fun () -> ignore (Params.norm_dispute 3 3))

(* ---------- Omega / U / rho ---------- *)

let test_omega_no_disputes () =
  let g = Gen.complete ~n:4 ~cap:1 in
  let omega = Params.omega_k g ~total_n:4 ~f:1 ~disputes:[] in
  Alcotest.(check int) "C(4,3) subsets" 4 (List.length omega)

let test_omega_excludes_disputed =
  qtest "no subgraph contains a disputed pair" feasible_gen (fun g ->
      let disputes = [ (2, 3); (4, 5) ] in
      let omega = Params.omega_k g ~total_n:5 ~f:1 ~disputes in
      List.for_all
        (fun h ->
          List.for_all (fun (a, b) -> not (Vset.mem a h && Vset.mem b h)) disputes)
        omega)

let test_u_monotone_under_disputes =
  qtest "U_k never below U_1 after dispute removal" feasible_gen (fun g ->
      (* Omega_k shrinks when disputes accumulate, so U can only grow:
         U_k >= U_1 (the paper uses this to justify rho* = U_1/2). *)
      let u1 = Params.u_k g ~total_n:5 ~f:1 ~disputes:[] in
      let disputes = [ (4, 5) ] in
      let g' = Params.apply_disputes g ~total_n:5 ~f:1 ~disputes in
      (* apply_disputes may remove no vertex here (one dispute, f=1: both of
         4,5 are candidate culprits, neither is in every cover). *)
      Digraph.num_vertices g' < 5
      || Params.u_k g' ~total_n:5 ~f:1 ~disputes >= u1)

(* ---------- necessarily_faulty / apply_disputes ---------- *)

let test_necessarily_faulty_pigeonhole () =
  let vs = Vset.of_list [ 1; 2; 3; 4; 5; 6; 7 ] in
  (* Node 7 disputes with f+1 = 3 distinct peers: every cover of size <= 2
     must contain 7. *)
  let disputes = [ (1, 7); (2, 7); (3, 7) ] in
  let nf = Params.necessarily_faulty vs ~f:2 ~disputes in
  Alcotest.(check (list int)) "7 convicted" [ 7 ] (Vset.elements nf);
  (* A single dispute convicts nobody. *)
  let nf1 = Params.necessarily_faulty vs ~f:2 ~disputes:[ (1, 2) ] in
  Alcotest.(check (list int)) "ambiguous" [] (Vset.elements nf1)

let test_necessarily_faulty_unexplainable () =
  let vs = Vset.of_list [ 1; 2; 3; 4 ] in
  (* A triangle of disputes needs 2 nodes to cover; f = 1 cannot explain. *)
  Alcotest.check_raises "unexplainable"
    (Invalid_argument "Params.necessarily_faulty: disputes not explainable by <= f nodes")
    (fun () ->
      ignore (Params.necessarily_faulty vs ~f:1 ~disputes:[ (1, 2); (2, 3); (1, 3) ]))

let test_apply_disputes_removes_edges () =
  let g = Gen.complete ~n:4 ~cap:1 in
  let g' = Params.apply_disputes g ~total_n:4 ~f:1 ~disputes:[ (2, 3) ] in
  Alcotest.(check bool) "edge gone" false (Digraph.mem_edge g' 2 3);
  Alcotest.(check bool) "reverse gone" false (Digraph.mem_edge g' 3 2);
  Alcotest.(check int) "no vertex removed" 4 (Digraph.num_vertices g')

let test_apply_disputes_removes_convicted () =
  let g = Gen.complete ~n:4 ~cap:1 in
  let disputes = [ (1, 4); (2, 4) ] in
  (* f = 1: node 4 disputes two distinct peers -> in every 1-cover. *)
  let g' = Params.apply_disputes g ~total_n:4 ~f:1 ~disputes in
  Alcotest.(check bool) "node 4 excluded" false (Digraph.mem_vertex g' 4);
  Alcotest.(check int) "three remain" 3 (Digraph.num_vertices g')

let test_apply_disputes_with_stale_endpoint () =
  (* Disputes naming an already-removed node must not implicate survivors. *)
  let g = Digraph.remove_vertex (Gen.complete ~n:5 ~cap:1) 5 in
  let disputes = [ (1, 5); (2, 5); (3, 5) ] in
  let g' = Params.apply_disputes g ~total_n:5 ~f:1 ~disputes in
  Alcotest.(check int) "survivors intact" 4 (Digraph.num_vertices g')

(* ---------- Gamma / gamma* / stars ---------- *)

let test_psi_includes_original () =
  let g = Gen.complete ~n:4 ~cap:2 in
  let psis = Params.psi_graphs g ~source:1 ~f:1 in
  Alcotest.(check bool) "G in Gamma" true (List.exists (Digraph.equal g) psis);
  Alcotest.(check bool) "several graphs" true (List.length psis > 1)

let test_gamma_star_complete () =
  let g = Gen.complete ~n:4 ~cap:2 in
  let gs = Params.gamma_star g ~source:1 ~f:1 in
  Alcotest.(check bool) "gamma* <= gamma_1" true (gs <= Params.gamma_k g ~source:1);
  Alcotest.(check bool) "gamma* >= 1" true (gs >= 1)

let test_gamma_star_f0 () =
  let g = Gen.figure1a in
  Alcotest.(check int) "f=0: gamma* = gamma" 2 (Params.gamma_star g ~source:1 ~f:0)

let test_gamma_star_upper_bound =
  qtest ~count:30 "sampled gamma' upper bound dominates exact" feasible_gen (fun g ->
      (* Sampling evaluates a subset of Gamma, so it can only over-estimate
         the minimum. (Tightness is heuristic: the worst configuration need
         not be a maximal one, since extra exclusions can raise gamma.) *)
      Params.gamma_star_upper g ~source:1 ~f:1 ~samples:8 ~seed:3
      >= Params.gamma_star g ~source:1 ~f:1)

let test_gamma_star_upper_tight_on_k4 () =
  let g = Gen.complete ~n:4 ~cap:2 in
  Alcotest.(check int) "tight on K4" (Params.gamma_star g ~source:1 ~f:1)
    (Params.gamma_star_upper g ~source:1 ~f:1 ~samples:16 ~seed:1)

let test_stars_theorem3 =
  qtest ~count:25 "Theorem 3: T_NAB >= C_BB/3 (and /2 when gamma* <= rho*)"
    feasible_gen (fun g ->
      let s = Params.stars g ~source:1 ~f:1 in
      let min_ratio = if s.half_capacity_condition then 0.5 else 1.0 /. 3.0 in
      s.ratio >= min_ratio -. 1e-9
      && s.throughput_lb
         = float_of_int (s.gamma_star * s.rho_star)
           /. float_of_int (s.gamma_star + s.rho_star)
      && s.capacity_ub
         = Float.min (float_of_int s.gamma_star) (2.0 *. float_of_int s.rho_star))

let test_stars_k4 () =
  let s = Params.stars (Gen.complete ~n:4 ~cap:2) ~source:1 ~f:1 in
  (* K4/cap2: rho* = U_1/2 with U_1 = min over triangles of their global
     undirected min cut = 8, so rho* = 4. *)
  Alcotest.(check int) "rho*" 4 s.rho_star;
  Alcotest.(check bool) "ratio >= 1/3" true (s.ratio >= (1.0 /. 3.0) -. 1e-9)

(* ---------- Capacity witnesses (Theorem 2 / Appendix F) ---------- *)

let test_capacity_witnesses_verify () =
  List.iter
    (fun (name, g, f) ->
      match Capacity.verify g ~source:1 ~f with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Printf.sprintf "%s: %s" name e))
    [
      ("K4 cap 2", Gen.complete ~n:4 ~cap:2, 1);
      ("K7 f=2", Gen.complete ~n:7 ~cap:1, 2);
      ("chords7", Gen.ring_with_chords ~n:7 ~cap:2 ~chord_cap:1, 1);
      ("twin-cliques", Gen.twin_cliques ~half:2 ~spoke_cap:8 ~intra_cap:8 ~cross_cap:1, 1);
      ("dumbbell", Gen.dumbbell ~clique:3 ~clique_cap:4 ~bridge_cap:2, 1);
    ]

let test_capacity_witnesses_random =
  qtest ~count:25 "witnesses verify on random networks" feasible_gen (fun g ->
      Capacity.verify g ~source:1 ~f:1 = Ok ())

let test_gamma_witness_structure () =
  let g = Gen.complete ~n:4 ~cap:2 in
  let w = Capacity.gamma_witness g ~source:1 ~f:1 in
  Alcotest.(check int) "cut value = gamma*" (Params.gamma_star g ~source:1 ~f:1)
    w.Capacity.cut_value;
  (* The cut edges' capacities inside psi sum to the cut value. *)
  let total =
    List.fold_left
      (fun acc (a, b) -> acc + Digraph.cap w.Capacity.psi a b)
      0 w.Capacity.cut_edges
  in
  Alcotest.(check int) "cut edges realise the value" w.Capacity.cut_value total;
  Alcotest.(check bool) "bottleneck inside psi" true
    (Digraph.mem_vertex w.Capacity.psi w.Capacity.bottleneck_node)

let test_rho_witness_structure () =
  let g = Gen.twin_cliques ~half:2 ~spoke_cap:8 ~intra_cap:8 ~cross_cap:1 in
  let w = Capacity.rho_witness g ~f:1 in
  (* U_H = 2 rho* = 8 on this network, attained by the H excluding node 1. *)
  Alcotest.(check int) "U_H" 8 w.Capacity.u_h;
  Alcotest.(check bool) "H excludes the source" false (Vset.mem 1 w.Capacity.h_nodes);
  Alcotest.(check bool) "side is a proper subset" true
    (not (Vset.is_empty w.Capacity.side)
    && Vset.cardinal w.Capacity.side < Vset.cardinal w.Capacity.h_nodes)

(* ---------- Pipeline (Figure 3) ---------- *)

let test_pipeline_shape () =
  let grid = Pipeline.schedule ~q:3 ~hops:2 in
  Alcotest.(check int) "rounds" 5 (List.length grid);
  (match List.assoc 1 grid with
  | [ (1, Pipeline.Phase1_hop 1) ] -> ()
  | _ -> Alcotest.fail "round 1 wrong");
  (match List.assoc 3 grid with
  | [ (1, Pipeline.Phase2); (2, Pipeline.Phase1_hop 2); (3, Pipeline.Phase1_hop 1) ] ->
      ()
  | _ -> Alcotest.fail "round 3 wrong");
  let count i =
    List.length (List.filter (fun (_, acts) -> List.mem_assoc i acts) grid)
  in
  Alcotest.(check int) "instance 1 span" 3 (count 1);
  Alcotest.(check int) "instance 3 span" 3 (count 3)

let test_pipeline_throughput () =
  let tp = Pipeline.steady_throughput ~l:1000.0 ~gamma:4.0 ~rho:2.0 ~overhead:0.0 in
  (* L / (L/4 + L/2) = 4/3. *)
  Alcotest.(check (float 1e-9)) "steady" (1000.0 /. 750.0) tp;
  let total =
    Pipeline.completion_time ~q:10 ~hops:3 ~l:1000.0 ~gamma:4.0 ~rho:2.0 ~overhead:0.0
  in
  Alcotest.(check (float 1e-9)) "completion" (13.0 *. 750.0) total

let test_pipeline_render () =
  let s = Pipeline.render ~q:2 ~hops:2 in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions P2" true (contains "P2");
  Alcotest.(check bool) "mentions hop 1" true (contains "H1")

let () =
  Alcotest.run "params"
    [
      ( "paper-example",
        [
          Alcotest.test_case "figure 1 quantities" `Quick test_paper_example;
          Alcotest.test_case "norm_dispute" `Quick test_norm_dispute;
        ] );
      ( "omega",
        [
          Alcotest.test_case "no disputes" `Quick test_omega_no_disputes;
          test_omega_excludes_disputed;
          test_u_monotone_under_disputes;
        ] );
      ( "dispute-application",
        [
          Alcotest.test_case "pigeonhole" `Quick test_necessarily_faulty_pigeonhole;
          Alcotest.test_case "unexplainable" `Quick test_necessarily_faulty_unexplainable;
          Alcotest.test_case "removes edges" `Quick test_apply_disputes_removes_edges;
          Alcotest.test_case "removes convicted" `Quick
            test_apply_disputes_removes_convicted;
          Alcotest.test_case "stale endpoints" `Quick
            test_apply_disputes_with_stale_endpoint;
        ] );
      ( "stars",
        [
          Alcotest.test_case "Gamma includes G" `Quick test_psi_includes_original;
          Alcotest.test_case "gamma* bounds" `Quick test_gamma_star_complete;
          Alcotest.test_case "gamma* at f=0" `Quick test_gamma_star_f0;
          test_gamma_star_upper_bound;
          Alcotest.test_case "sampled tight on K4" `Quick
            test_gamma_star_upper_tight_on_k4;
          test_stars_theorem3;
          Alcotest.test_case "K4 values" `Quick test_stars_k4;
        ] );
      ( "capacity-witnesses",
        [
          Alcotest.test_case "verify on families" `Quick test_capacity_witnesses_verify;
          test_capacity_witnesses_random;
          Alcotest.test_case "gamma witness structure" `Quick test_gamma_witness_structure;
          Alcotest.test_case "rho witness structure" `Quick test_rho_witness_structure;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "schedule shape" `Quick test_pipeline_shape;
          Alcotest.test_case "throughput formulas" `Quick test_pipeline_throughput;
          Alcotest.test_case "render" `Quick test_pipeline_render;
        ] );
    ]
