(* Tests for the classical BB layer: Routing, Reliable, Eig, Phase_king,
   Oblivious. *)

open Nab_graph
open Nab_net
open Nab_classic

let new_sim g = Sim.create g ~bits:Packet.bits

(* ---------- Routing ---------- *)

let test_routing_direct_edges () =
  let g = Gen.complete ~n:4 ~cap:1 in
  let r = Routing.build g ~f:1 in
  Alcotest.(check (list (list int))) "direct route" [ [ 1; 2 ] ] (Routing.paths r ~src:1 ~dst:2);
  Alcotest.(check int) "max len" 1 (Routing.max_path_len r)

let test_routing_disjoint () =
  (* Ring with chords is 4-connected; remove an edge to force multi-hop. *)
  let g = Gen.ring_with_chords ~n:7 ~cap:1 ~chord_cap:1 in
  let g = Digraph.remove_pair g 1 4 in
  let r = Routing.build g ~f:1 in
  let paths = Routing.paths r ~src:1 ~dst:4 in
  Alcotest.(check int) "2f+1 paths" 3 (List.length paths);
  let internals = List.concat_map (fun p -> List.filter (fun v -> v <> 1 && v <> 4) p) paths in
  Alcotest.(check int) "node disjoint" (List.length internals)
    (List.length (List.sort_uniq compare internals));
  Alcotest.(check bool) "is_route accepts" true (Routing.is_route r ~src:1 ~dst:4 (List.hd paths));
  Alcotest.(check bool) "is_route rejects forgery" false
    (Routing.is_route r ~src:1 ~dst:4 [ 1; 99; 4 ])

let test_routing_too_sparse () =
  let g = Gen.ring ~n:5 ~cap:1 in
  (* Connectivity 2 < 3: non-adjacent pairs cannot get 3 disjoint paths. *)
  match Routing.build g ~f:1 with
  | _ -> Alcotest.fail "expected failure"
  | exception Invalid_argument _ -> ()

let test_next_hop () =
  let g = Gen.complete ~n:4 ~cap:1 in
  let r = Routing.build g ~f:1 in
  Alcotest.(check (option int)) "middle" (Some 3) (Routing.next_hop r ~route:[ 1; 2; 3 ] ~me:2);
  Alcotest.(check (option int)) "end" None (Routing.next_hop r ~route:[ 1; 2; 3 ] ~me:3)

(* ---------- Reliable ---------- *)

(* A 5-node, 3-connected graph where 1 and 4 are NOT adjacent, so logical
   messages 1 -> 4 really ride 3 disjoint multi-hop paths. *)
let sparse5 =
  let g = Gen.ring_with_chords ~n:5 ~cap:2 ~chord_cap:2 in
  (* ring+chords on 5 nodes is K5; drop the 1-3 pair, leaving node 1 with
     degree 3 = 2f+1, so logical 1 -> 3 traffic rides 3 disjoint paths. *)
  Digraph.remove_pair g 1 3

let test_reliable_honest () =
  Alcotest.(check bool) "precondition: not adjacent" false (Digraph.mem_edge sparse5 1 3);
  let sim = new_sim sparse5 in
  let routing = Routing.build sparse5 ~f:1 in
  let delivery =
    Reliable.exchange ~net:(Sim.transport sim) ~phase:"t" ~routing ~proto:"t" ~faulty:Vset.empty
      ~hooks:Reliable.honest_hooks ~default:Wire.Nothing
      ~sends:[ (1, 3, Wire.Flag true); (2, 5, Wire.Flag false) ]
  in
  Alcotest.(check bool) "1->3 delivered" true
    (Reliable.get delivery ~default:Wire.Nothing ~src:1 ~dst:3 = Wire.Flag true);
  Alcotest.(check bool) "2->5 delivered" true
    (Reliable.get delivery ~default:Wire.Nothing ~src:2 ~dst:5 = Wire.Flag false)

let test_reliable_majority_beats_corruption () =
  let sim = new_sim sparse5 in
  let routing = Routing.build sparse5 ~f:1 in
  (* Node 2 corrupts every packet it forwards; 1->4 still delivered since
     only one of the three disjoint paths passes through node 2. *)
  let hooks =
    {
      Reliable.honest_hooks with
      forward =
        (fun ~me:_ (pkt : Packet.t) -> Some { pkt with payload = Wire.Flag false });
    }
  in
  let delivery =
    Reliable.exchange ~net:(Sim.transport sim) ~phase:"t" ~routing ~proto:"t" ~faulty:(Vset.singleton 2)
      ~hooks ~default:Wire.Nothing ~sends:[ (1, 3, Wire.Flag true) ]
  in
  Alcotest.(check bool) "majority wins" true
    (Reliable.get delivery ~default:Wire.Nothing ~src:1 ~dst:3 = Wire.Flag true)

let test_reliable_dropping_relay () =
  let sim = new_sim sparse5 in
  let routing = Routing.build sparse5 ~f:1 in
  let hooks = { Reliable.honest_hooks with forward = (fun ~me:_ _ -> None) } in
  let delivery =
    Reliable.exchange ~net:(Sim.transport sim) ~phase:"t" ~routing ~proto:"t" ~faulty:(Vset.singleton 2)
      ~hooks ~default:Wire.Nothing ~sends:[ (1, 3, Wire.Flag true) ]
  in
  Alcotest.(check bool) "drop is survivable" true
    (Reliable.get delivery ~default:Wire.Nothing ~src:1 ~dst:3 = Wire.Flag true)

let test_reliable_equivocating_source () =
  let sim = new_sim sparse5 in
  let routing = Routing.build sparse5 ~f:1 in
  (* A faulty source sends a different value down each path: the receiver's
     plurality is deterministic, whatever it is. *)
  let counter = ref 0 in
  let hooks =
    {
      Reliable.honest_hooks with
      originate =
        (fun ~me:_ ~dst:_ ~path:_ _ ->
          incr counter;
          Some (Wire.Value { bits = 4; data = [| !counter |] }));
    }
  in
  let delivery =
    Reliable.exchange ~net:(Sim.transport sim) ~phase:"t" ~routing ~proto:"t" ~faulty:(Vset.singleton 1)
      ~hooks ~default:Wire.Nothing ~sends:[ (1, 3, Wire.Flag true) ]
  in
  (* All three copies differ: tie -> default. *)
  Alcotest.(check bool) "tie falls to default" true
    (Reliable.get delivery ~default:Wire.Nothing ~src:1 ~dst:3 = Wire.Nothing)

let test_reliable_injection_filtered () =
  let sim = new_sim sparse5 in
  let routing = Routing.build sparse5 ~f:1 in
  (* Node 2 injects forged packets claiming origin 1 on a bogus route; the
     receivers' route validation rejects them. *)
  let forged =
    { Packet.proto = "t"; origin = 1; final_dst = 3; route = [ 1; 2; 3 ]; payload = Wire.Flag false }
  in
  let hooks =
    { Reliable.honest_hooks with inject = (fun ~me:_ ~subround:_ -> [ forged ]) }
  in
  let delivery =
    Reliable.exchange ~net:(Sim.transport sim) ~phase:"t" ~routing ~proto:"t" ~faulty:(Vset.singleton 2)
      ~hooks ~default:Wire.Nothing ~sends:[ (1, 3, Wire.Flag true) ]
  in
  Alcotest.(check bool) "forgery rejected or out-voted" true
    (Reliable.get delivery ~default:Wire.Nothing ~src:1 ~dst:3 = Wire.Flag true)

let test_reliable_duplicate_send_rejected () =
  let sim = new_sim sparse5 in
  let routing = Routing.build sparse5 ~f:1 in
  Alcotest.check_raises "duplicate pair"
    (Invalid_argument "Reliable.exchange: duplicate send for a pair (use Wire.Batch)")
    (fun () ->
      ignore
        (Reliable.exchange ~net:(Sim.transport sim) ~phase:"t" ~routing ~proto:"t" ~faulty:Vset.empty
           ~hooks:Reliable.honest_hooks ~default:Wire.Nothing
           ~sends:[ (1, 3, Wire.Flag true); (1, 3, Wire.Flag false) ]))

(* Fuzz the reliable layer: a random faulty relay applying random packet
   corruption must never flip an honest logical message. *)
let test_reliable_fuzz =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60 ~name:"reliable exchange survives random relay attacks"
       QCheck2.Gen.(pair (int_range 0 10_000) (int_range 2 5))
       (fun (seed, bad) ->
         let bad = if bad = 1 || bad = 3 then 2 else bad in
         (* node 1 -> 3 is the multi-hop pair in sparse5; pick the faulty
            relay among the others. *)
         let sim = new_sim sparse5 in
         let routing = Routing.build sparse5 ~f:1 in
         let st = Random.State.make [| seed |] in
         let hooks =
           {
             Reliable.honest_hooks with
             forward =
               (fun ~me:_ (pkt : Packet.t) ->
                 match Random.State.int st 4 with
                 | 0 -> None
                 | 1 -> Some { pkt with payload = Wire.Flag (Random.State.bool st) }
                 | 2 -> Some { pkt with payload = Wire.Nothing }
                 | _ -> Some pkt);
             originate =
               (fun ~me:_ ~dst:_ ~path:_ p ->
                 if Random.State.int st 3 = 0 then None else Some p);
           }
         in
         let delivery =
           Reliable.exchange ~net:(Sim.transport sim) ~phase:"t" ~routing ~proto:"t"
             ~faulty:(Vset.singleton bad) ~hooks ~default:Wire.Nothing
             ~sends:[ (1, 3, Wire.Flag true) ]
         in
         (* Node 1 is honest here (originate only applies to faulty), so the
            flag must arrive whenever the sender is not the faulty one. *)
         Reliable.get delivery ~default:Wire.Nothing ~src:1 ~dst:3 = Wire.Flag true))

(* ---------- EIG ---------- *)

let check_bb_guarantees ~name ~graph ~f ~source ~value ~faulty ?adversary
    ?reliable_hooks () =
  let sim = new_sim graph in
  let routing = Routing.build graph ~f in
  let decisions =
    Eig.broadcast ~net:(Sim.transport sim) ~phase:"bb" ~routing ~f ~source ~value ~default:Wire.Nothing
      ~faulty ?adversary ?reliable_hooks ()
  in
  let honest = List.filter (fun (v, _) -> not (Vset.mem v faulty)) decisions in
  (match honest with
  | [] -> ()
  | (_, d0) :: rest ->
      List.iter
        (fun (v, d) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: node %d agrees" name v)
            true (Wire.equal d d0))
        rest);
  if not (Vset.mem source faulty) then
    List.iter
      (fun (v, d) ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: node %d validity" name v)
          true (Wire.equal d value))
      honest

let k4 = Gen.complete ~n:4 ~cap:2
let k7 = Gen.complete ~n:7 ~cap:2

let test_eig_no_faults () =
  check_bb_guarantees ~name:"clean" ~graph:k4 ~f:1 ~source:1 ~value:(Wire.Flag true)
    ~faulty:Vset.empty ()

let test_eig_silent_source () =
  let adversary ~me:_ ~round:_ ~dst:_ _ = [] in
  check_bb_guarantees ~name:"silent source" ~graph:k4 ~f:1 ~source:1
    ~value:(Wire.Flag true) ~faulty:(Vset.singleton 1) ~adversary ()

let test_eig_equivocating_source () =
  (* Source tells even nodes true and odd nodes false. *)
  let adversary ~me:_ ~round ~dst pairs =
    if round = 1 then List.map (fun (l, _) -> (l, Wire.Flag (dst mod 2 = 0))) pairs
    else pairs
  in
  check_bb_guarantees ~name:"equivocating source" ~graph:k4 ~f:1 ~source:1
    ~value:(Wire.Flag true) ~faulty:(Vset.singleton 1) ~adversary ()

let test_eig_lying_relay () =
  let adversary ~me:_ ~round ~dst:_ pairs =
    if round > 1 then List.map (fun (l, _) -> (l, Wire.Flag false)) pairs else pairs
  in
  check_bb_guarantees ~name:"lying relay" ~graph:k4 ~f:1 ~source:1
    ~value:(Wire.Flag true) ~faulty:(Vset.singleton 3) ~adversary ()

let test_eig_f2_two_liars () =
  let adversary ~me ~round:_ ~dst ~pairs:_ = ignore me; ignore dst; [] in
  ignore adversary;
  let adversary ~me:_ ~round:_ ~dst:_ pairs =
    List.map (fun (l, v) -> (l, if v = Wire.Flag true then Wire.Flag false else v)) pairs
  in
  check_bb_guarantees ~name:"two liars f=2" ~graph:k7 ~f:2 ~source:1
    ~value:(Wire.Flag true)
    ~faulty:(Vset.of_list [ 6; 7 ])
    ~adversary ()

let test_eig_incomplete_graph () =
  check_bb_guarantees ~name:"incomplete graph" ~graph:sparse5 ~f:1 ~source:1
    ~value:(Wire.Flag true) ~faulty:(Vset.singleton 2)
    ~adversary:(fun ~me:_ ~round:_ ~dst:_ _ -> [])
    ()

let test_eig_multi_source () =
  let sim = new_sim k4 in
  let routing = Routing.build k4 ~f:1 in
  let inputs = [ (1, Wire.Flag true); (2, Wire.Flag false); (3, Wire.Flag true); (4, Wire.Flag false) ] in
  let adversary ~me:_ ~round:_ ~dst:_ pairs =
    List.map (fun (l, _) -> (l, Wire.Flag true)) pairs
  in
  let decisions =
    Eig.broadcast_all ~net:(Sim.transport sim) ~phase:"bb" ~routing ~f:1 ~inputs ~default:Wire.Nothing
      ~faulty:(Vset.singleton 4) ~adversary ()
  in
  (* For each honest source, every honest node must decide its input. *)
  List.iter
    (fun (s, v) ->
      if s <> 4 then
        List.iter
          (fun node ->
            if node <> 4 then
              Alcotest.(check bool)
                (Printf.sprintf "source %d at node %d" s node)
                true
                (Wire.equal (Hashtbl.find decisions (s, node)) v))
          [ 1; 2; 3 ])
    inputs;
  (* For the faulty source, honest nodes must still agree with each other. *)
  let d1 = Hashtbl.find decisions (4, 1) in
  List.iter
    (fun node ->
      Alcotest.(check bool) "agreement on faulty source" true
        (Wire.equal (Hashtbl.find decisions (4, node)) d1))
    [ 2; 3 ]

let test_eig_requires_n_gt_3f () =
  let sim = new_sim k4 in
  let routing = Routing.build k4 ~f:1 in
  Alcotest.check_raises "n > 3f" (Invalid_argument "Eig.broadcast_all: requires n > 3f")
    (fun () ->
      ignore
        (Eig.broadcast ~net:(Sim.transport sim) ~phase:"bb" ~routing ~f:2 ~source:1 ~value:Wire.Nothing
           ~default:Wire.Nothing ~faulty:Vset.empty ()))

let test_eig_cost_grows_with_f () =
  (* P(n) bits for 1-bit broadcast: verify rounds = f + 1 on the wire. *)
  let sim1 = new_sim k7 in
  let routing = Routing.build k7 ~f:1 in
  ignore
    (Eig.broadcast ~net:(Sim.transport sim1) ~phase:"bb" ~routing ~f:1 ~source:1 ~value:(Wire.Flag true)
       ~default:Wire.Nothing ~faulty:Vset.empty ());
  Alcotest.(check int) "f=1: 2 rounds" 2 (Sim.rounds_run sim1);
  let sim2 = new_sim k7 in
  let routing2 = Routing.build k7 ~f:2 in
  ignore
    (Eig.broadcast ~net:(Sim.transport sim2) ~phase:"bb" ~routing:routing2 ~f:2 ~source:1
       ~value:(Wire.Flag true) ~default:Wire.Nothing ~faulty:Vset.empty ());
  Alcotest.(check int) "f=2: 3 rounds" 3 (Sim.rounds_run sim2)

(* ---------- Phase king ---------- *)

let check_pk_guarantees ~name ~graph ~f ~source ~value ~faulty ?adversary () =
  let sim = new_sim graph in
  let routing = Routing.build graph ~f in
  let decisions =
    Phase_king.broadcast ~net:(Sim.transport sim) ~phase:"pk" ~routing ~f ~source ~value
      ~default:Wire.Nothing ~faulty ?adversary ()
  in
  let honest = List.filter (fun (v, _) -> not (Vset.mem v faulty)) decisions in
  (match honest with
  | [] -> ()
  | (_, d0) :: rest ->
      List.iter
        (fun (v, d) ->
          Alcotest.(check bool) (Printf.sprintf "%s: node %d agrees" name v) true
            (Wire.equal d d0))
        rest);
  if not (Vset.mem source faulty) then
    List.iter
      (fun (v, d) ->
        Alcotest.(check bool) (Printf.sprintf "%s: node %d validity" name v) true
          (Wire.equal d value))
      honest

let k5 = Gen.complete ~n:5 ~cap:2

let test_pk_no_faults () =
  check_pk_guarantees ~name:"pk clean" ~graph:k5 ~f:1 ~source:1 ~value:(Wire.Flag true)
    ~faulty:Vset.empty ()

let test_pk_lying_relay () =
  let adversary ~me:_ ~phase_no:_ ~round:_ ~dst:_ pairs =
    List.map (fun (s, _) -> (s, Wire.Flag false)) pairs
  in
  check_pk_guarantees ~name:"pk liar" ~graph:k5 ~f:1 ~source:1 ~value:(Wire.Flag true)
    ~faulty:(Vset.singleton 5) ~adversary ()

let test_pk_equivocating_source () =
  let adversary ~me:_ ~phase_no:_ ~round ~dst pairs =
    if round = 0 then List.map (fun (s, _) -> (s, Wire.Flag (dst mod 2 = 0))) pairs
    else pairs
  in
  check_pk_guarantees ~name:"pk equivocator" ~graph:k5 ~f:1 ~source:1
    ~value:(Wire.Flag true) ~faulty:(Vset.singleton 1) ~adversary ()

let test_pk_faulty_king () =
  (* Node 1 is the first king; make it faulty and lie in king rounds. *)
  let adversary ~me:_ ~phase_no:_ ~round ~dst pairs =
    if round = 2 then List.map (fun (s, _) -> (s, Wire.Flag (dst mod 2 = 1))) pairs
    else pairs
  in
  check_pk_guarantees ~name:"pk faulty king" ~graph:k5 ~f:1 ~source:2
    ~value:(Wire.Flag true) ~faulty:(Vset.singleton 1) ~adversary ()

let test_pk_multi_source_batch () =
  let sim = new_sim k5 in
  let routing = Routing.build k5 ~f:1 in
  let inputs = List.map (fun s -> (s, Wire.Flag (s mod 2 = 0))) [ 1; 2; 3; 4; 5 ] in
  let adversary ~me:_ ~phase_no:_ ~round:_ ~dst:_ pairs =
    List.map (fun (s, _) -> (s, Wire.Flag true)) pairs
  in
  let decisions =
    Phase_king.broadcast_all ~net:(Sim.transport sim) ~phase:"pk" ~routing ~f:1 ~inputs
      ~default:Wire.Nothing ~faulty:(Vset.singleton 5) ~adversary ()
  in
  List.iter
    (fun (s, v) ->
      (* Honest sources: validity at every honest node. Faulty source:
         agreement among honest nodes. *)
      let honest = [ 1; 2; 3; 4 ] in
      let d1 = Hashtbl.find decisions (s, 1) in
      List.iter
        (fun node ->
          let d = Hashtbl.find decisions (s, node) in
          Alcotest.(check bool)
            (Printf.sprintf "source %d at node %d agreement" s node)
            true (Wire.equal d d1);
          if s <> 5 then
            Alcotest.(check bool)
              (Printf.sprintf "source %d at node %d validity" s node)
              true (Wire.equal d v))
        honest)
    inputs

let test_pk_requires_n_gt_4f () =
  let sim = new_sim k4 in
  let routing = Routing.build k4 ~f:1 in
  Alcotest.check_raises "n > 4f"
    (Invalid_argument "Phase_king.broadcast_all: requires n > 4f") (fun () ->
      ignore
        (Phase_king.broadcast ~net:(Sim.transport sim) ~phase:"pk" ~routing ~f:1 ~source:1
           ~value:Wire.Nothing ~default:Wire.Nothing ~faulty:Vset.empty ()))

(* ---------- Oblivious baseline ---------- *)

let test_oblivious_delivers () =
  let sim = new_sim k4 in
  let routing = Routing.build k4 ~f:1 in
  let data = [| 0xde; 0xad; 0xbe; 0xef |] in
  let decisions =
    Oblivious.broadcast ~net:(Sim.transport sim) ~routing ~f:1 ~source:1 ~value_bits:32 ~data
      ~faulty:Vset.empty ()
  in
  List.iter
    (fun (v, d) ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d" v)
        true
        (Wire.equal d (Wire.Value { bits = 32; data })))
    decisions;
  Alcotest.(check bool) "costs at least L on some link" true
    (List.exists (fun (_, b) -> b >= 32) (Sim.link_bits sim))

let () =
  Alcotest.run "classic"
    [
      ( "routing",
        [
          Alcotest.test_case "direct edges" `Quick test_routing_direct_edges;
          Alcotest.test_case "disjoint paths" `Quick test_routing_disjoint;
          Alcotest.test_case "too sparse" `Quick test_routing_too_sparse;
          Alcotest.test_case "next hop" `Quick test_next_hop;
        ] );
      ( "reliable",
        [
          Alcotest.test_case "honest exchange" `Quick test_reliable_honest;
          Alcotest.test_case "majority beats corruption" `Quick
            test_reliable_majority_beats_corruption;
          Alcotest.test_case "dropping relay" `Quick test_reliable_dropping_relay;
          Alcotest.test_case "equivocating source" `Quick
            test_reliable_equivocating_source;
          Alcotest.test_case "injection filtered" `Quick test_reliable_injection_filtered;
          Alcotest.test_case "duplicate send rejected" `Quick
            test_reliable_duplicate_send_rejected;
          test_reliable_fuzz;
        ] );
      ( "eig",
        [
          Alcotest.test_case "no faults" `Quick test_eig_no_faults;
          Alcotest.test_case "silent source" `Quick test_eig_silent_source;
          Alcotest.test_case "equivocating source" `Quick test_eig_equivocating_source;
          Alcotest.test_case "lying relay" `Quick test_eig_lying_relay;
          Alcotest.test_case "two liars f=2" `Quick test_eig_f2_two_liars;
          Alcotest.test_case "incomplete graph" `Quick test_eig_incomplete_graph;
          Alcotest.test_case "multi source batch" `Quick test_eig_multi_source;
          Alcotest.test_case "requires n > 3f" `Quick test_eig_requires_n_gt_3f;
          Alcotest.test_case "round count" `Quick test_eig_cost_grows_with_f;
        ] );
      ( "phase-king",
        [
          Alcotest.test_case "no faults" `Quick test_pk_no_faults;
          Alcotest.test_case "lying relay" `Quick test_pk_lying_relay;
          Alcotest.test_case "equivocating source" `Quick test_pk_equivocating_source;
          Alcotest.test_case "faulty king" `Quick test_pk_faulty_king;
          Alcotest.test_case "multi-source batch" `Quick test_pk_multi_source_batch;
          Alcotest.test_case "requires n > 4f" `Quick test_pk_requires_n_gt_4f;
        ] );
      ( "oblivious",
        [ Alcotest.test_case "delivers value" `Quick test_oblivious_delivers ] );
    ]
