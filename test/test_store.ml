(* The campaign-at-scale layer: the sharded crash-safe result store, the
   resumable runner, the streaming readers/diff, the bounded plan cache,
   and the deterministic analyze step.

   The headline property pinned here (an ISSUE-10 acceptance criterion):
   a campaign killed mid-run and resumed — at a different job count, with
   a torn partial line on disk — seals to a store byte-identical to a
   one-shot run. *)

open Nab_exp
module Json = Nab_obs.Json

let tmp_dir name =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) ("nab_store_test_" ^ name) in
  let rec rm path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun n -> rm (Filename.concat path n)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  rm dir;
  dir

let dir_files dir =
  Sys.readdir dir |> Array.to_list |> List.sort compare
  |> List.map (fun n ->
         let ic = open_in_bin (Filename.concat dir n) in
         let s = really_input_string ic (in_channel_length ic) in
         close_in ic;
         (n, s))

(* ---- store basics ---- *)

let test_store_roundtrip () =
  let dir = tmp_dir "roundtrip" in
  let st = Store.open_ ~shards:4 ~dir ~salt:"s1" () in
  Store.add st ~id:"a" ~line:{|{"id":"a","v":1}|};
  Store.add st ~id:"b" ~line:{|{"id":"b","v":2}|};
  Alcotest.(check int) "pending before commit" 2 (Store.pending st);
  Alcotest.(check int) "rows before commit" 0 (Store.row_count st);
  Alcotest.(check bool) "mem sees pending" true (Store.mem st "a");
  Store.commit st;
  Alcotest.(check int) "rows after commit" 2 (Store.row_count st);
  (match Store.add st ~id:"a" ~line:"{}" with
  | exception Store.Error _ -> ()
  | () -> Alcotest.fail "duplicate id accepted");
  Store.close st;
  (* reopen: same rows, ids indexed *)
  let st = Store.open_ ~shards:4 ~dir ~salt:"s1" () in
  Alcotest.(check int) "rows after reopen" 2 (Store.row_count st);
  Alcotest.(check bool) "mem after reopen" true (Store.mem st "a" && Store.mem st "b");
  Alcotest.(check bool) "absent id" false (Store.mem st "c");
  Store.close st;
  (* streaming reader sees every committed line, shard order *)
  let lines = Store.fold ~dir ~init:[] ~f:(fun acc l -> l :: acc) in
  Alcotest.(check int) "fold sees both rows" 2 (List.length lines);
  (* shard placement is the content fingerprint, stable across shard counts *)
  Alcotest.(check int) "shard_of_id deterministic"
    (Store.shard_of_id ~shards:4 "a")
    (Store.shard_of_id ~shards:4 "a")

let test_store_torn_tail () =
  let dir = tmp_dir "torn" in
  let st = Store.open_ ~shards:2 ~dir ~salt:"s1" () in
  Store.add st ~id:"a" ~line:{|{"id":"a"}|};
  Store.commit st;
  Store.close st;
  (* simulate a crash mid-append: garbage past the committed region *)
  let shard = Store.shard_of_id ~shards:2 "a" in
  let path = Filename.concat dir (Store.shard_name shard) in
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc {|{"id":"b","trunc|};
  close_out oc;
  let st = Store.open_ ~shards:2 ~dir ~salt:"s1" () in
  Alcotest.(check int) "torn tail dropped" 1 (Store.row_count st);
  Alcotest.(check bool) "torn row not indexed" false (Store.mem st "b");
  (* and the truncated file accepts new appends cleanly *)
  Store.add st ~id:"b" ~line:{|{"id":"b"}|};
  Store.commit st;
  Alcotest.(check int) "append after recovery" 2 (Store.row_count st);
  Store.close st

let test_store_salt_mismatch () =
  let dir = tmp_dir "salt" in
  let st = Store.open_ ~dir ~salt:"v1" () in
  Store.add st ~id:"a" ~line:{|{"id":"a"}|};
  Store.commit st;
  Store.close st;
  (* a different code-version salt must not satisfy a resume *)
  let st = Store.open_ ~dir ~salt:"v2" () in
  Alcotest.(check int) "different salt restarts empty" 0 (Store.row_count st);
  Alcotest.(check bool) "old row gone" false (Store.mem st "a");
  Store.close st

let test_store_corruption_detected () =
  let dir = tmp_dir "corrupt" in
  let st = Store.open_ ~shards:1 ~dir ~salt:"s1" () in
  Store.add st ~id:"aa" ~line:{|{"id":"aa","v":1}|};
  Store.commit st;
  Store.close st;
  (* flip a byte inside the committed region *)
  let path = Filename.concat dir (Store.shard_name 0) in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  ignore (Unix.lseek fd 9 Unix.SEEK_SET);
  ignore (Unix.write_substring fd "X" 0 1);
  Unix.close fd;
  match Store.open_ ~shards:1 ~dir ~salt:"s1" () with
  | exception Store.Error _ -> ()
  | st ->
      Store.close st;
      Alcotest.fail "corrupt committed region opened silently"

(* ---- resume determinism (ISSUE acceptance criterion) ---- *)

let soak_scenarios = Campaigns.soak ~trials:24 ~seed:5

let run_into ~jobs ?limit dir =
  let st = Store.open_ ~dir ~salt:"t" () in
  let summary = Runner.run_campaign_store ~jobs ?limit ~commit_rows:7 ~store:st soak_scenarios in
  if summary.Runner.complete then Store.seal ~jobs st;
  Store.close st;
  summary

let test_resume_determinism () =
  (* one-shot at jobs 1 *)
  let one = tmp_dir "oneshot" in
  let s = run_into ~jobs:1 one in
  Alcotest.(check bool) "one-shot complete" true (s.Runner.complete && s.Runner.ran > 0);
  (* killed mid-run (limit), with a torn append, resumed at jobs 4 *)
  let res = tmp_dir "resumed" in
  let part = run_into ~jobs:4 ~limit:11 res in
  Alcotest.(check bool) "interrupted incomplete" true (not part.Runner.complete);
  let torn_path = Filename.concat res (Store.shard_name 3) in
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 torn_path in
  output_string oc {|{"id":"half-a-row|};
  close_out oc;
  let rest = run_into ~jobs:4 res in
  Alcotest.(check bool) "resume complete" true rest.Runner.complete;
  Alcotest.(check int) "resume skipped the stored rows" 11 rest.Runner.skipped;
  Alcotest.(check bool) "interrupted+resumed == one-shot, byte for byte" true
    (dir_files one = dir_files res);
  (* unchanged rerun: skips everything, changes nothing *)
  let again = run_into ~jobs:4 one in
  Alcotest.(check int) "unchanged rerun runs nothing" 0 again.Runner.ran;
  Alcotest.(check bool) "unchanged rerun leaves bytes alone" true (dir_files one = dir_files res)

(* ---- streaming reader and diff ---- *)

let baseline_path = "../CAMPAIGN_baseline.jsonl"

let test_fold_jsonl_matches_read () =
  let folded =
    match Runner.fold_jsonl baseline_path ~init:[] ~f:(fun acc r -> r :: acc) with
    | Ok rows -> List.rev rows
    | Error e -> Alcotest.fail e
  in
  let read = match Runner.read_jsonl baseline_path with Ok r -> r | Error e -> Alcotest.fail e in
  Alcotest.(check int) "same row count" (List.length read) (List.length folded);
  Alcotest.(check bool) "same rows in order" true
    (List.for_all2
       (fun a b -> Json.to_string (Runner.row_to_json a) = Json.to_string (Runner.row_to_json b))
       read folded)

let test_diff_jsonl_self_empty () =
  match Runner.diff_jsonl ~baseline_path ~current_path:baseline_path with
  | Error e -> Alcotest.fail e
  | Ok d -> Alcotest.(check bool) "file diffs empty against itself" true (Runner.diff_is_empty d)

(* ---- plan cache LRU bound ---- *)

let test_plan_cache_lru () =
  let cache = Nab_util.Plan_cache.create ~cap:2 ~name:"test.lru" () in
  let compute k = Nab_util.Plan_cache.find_or_compute cache ~key:k (fun () -> k ^ "!") in
  ignore (compute "a");
  ignore (compute "b");
  ignore (compute "a");
  (* recency: a is fresher than b, so c evicts b *)
  ignore (compute "c");
  Alcotest.(check bool) "a survived (recently used)" true
    (Nab_util.Plan_cache.find cache ~key:"a" <> None);
  Alcotest.(check bool) "b evicted (LRU)" true
    (Nab_util.Plan_cache.find cache ~key:"b" = None);
  let s = Nab_util.Plan_cache.stats cache in
  Alcotest.(check int) "entries bounded" 2 s.Nab_util.Plan_cache.entries;
  Alcotest.(check int) "eviction counted" 1 s.Nab_util.Plan_cache.evictions;
  (* an evicted key recomputes to the same value: eviction is invisible *)
  Alcotest.(check string) "evicted key recomputes" "b!" (compute "b");
  (* shrinking the cap evicts immediately *)
  Nab_util.Plan_cache.set_cap cache (Some 1);
  let s = Nab_util.Plan_cache.stats cache in
  Alcotest.(check int) "set_cap shrinks now" 1 s.Nab_util.Plan_cache.entries;
  (* unbounded again: no further evictions *)
  Nab_util.Plan_cache.set_cap cache None;
  ignore (compute "d");
  ignore (compute "e");
  let s = Nab_util.Plan_cache.stats cache in
  Alcotest.(check int) "uncapped grows" 3 s.Nab_util.Plan_cache.entries

let test_plan_cache_unbounded_default () =
  let cache = Nab_util.Plan_cache.create ~name:"test.unbounded" () in
  for i = 0 to 99 do
    ignore
      (Nab_util.Plan_cache.find_or_compute cache ~key:(string_of_int i) (fun () -> i))
  done;
  let s = Nab_util.Plan_cache.stats cache in
  Alcotest.(check int) "no evictions by default" 0 s.Nab_util.Plan_cache.evictions;
  Alcotest.(check int) "all entries retained" 100 s.Nab_util.Plan_cache.entries

(* ---- analyze ---- *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_analyze_matches_committed () =
  (* The committed quick-tier analyze artifact is a pure function of the
     committed baseline rows; this is the byte-level gate CI relies on. *)
  match Analyze.of_source (Analyze.Jsonl baseline_path) with
  | Error e -> Alcotest.fail e
  | Ok t ->
      Alcotest.(check string) "CAMPAIGN_analyze.json matches the baseline rows"
        (read_file "../CAMPAIGN_analyze.json")
        (Json.to_string (Analyze.to_json t) ^ "\n");
      Alcotest.(check string) "CAMPAIGN_analyze.md matches the baseline rows"
        (read_file "../CAMPAIGN_analyze.md")
        (Analyze.to_markdown t)

let test_analyze_jobs_independent () =
  let dir = tmp_dir "analyze" in
  ignore (run_into ~jobs:4 dir);
  let at jobs =
    match Analyze.of_source ~jobs (Analyze.Store_dir dir) with
    | Ok t -> Json.to_string (Analyze.to_json t)
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check string) "analyze bytes independent of jobs" (at 1) (at 4);
  (* A flat dump of the same rows agrees on every count; float moments may
     differ in the last ulp (sequential fold vs shard-partial merge), so
     only the counting fields are compared across source kinds. *)
  let flat = Filename.concat (Filename.get_temp_dir_name ()) "nab_store_test_flat.jsonl" in
  let oc = open_out flat in
  Store.fold ~dir ~init:() ~f:(fun () line ->
      output_string oc line;
      output_char oc '\n');
  close_out oc;
  match Analyze.of_source (Analyze.Jsonl flat) with
  | Error e -> Alcotest.fail e
  | Ok t ->
      let counts json =
        ( Json.member "rows" json,
          Json.member "outcomes" json,
          Json.member "dispute_hist" json,
          Json.member "dc_hist" json )
      in
      let store_json =
        match Analyze.of_source ~jobs:1 (Analyze.Store_dir dir) with
        | Ok t -> Analyze.to_json t
        | Error e -> Alcotest.fail e
      in
      Alcotest.(check bool) "store and flat agree on all counts" true
        (counts store_json = counts (Analyze.to_json t))

let () =
  Alcotest.run "store"
    [
      ( "store",
        [
          Alcotest.test_case "roundtrip" `Quick test_store_roundtrip;
          Alcotest.test_case "torn tail recovery" `Quick test_store_torn_tail;
          Alcotest.test_case "salt mismatch restarts" `Quick test_store_salt_mismatch;
          Alcotest.test_case "corruption detected" `Quick test_store_corruption_detected;
        ] );
      ( "resume",
        [ Alcotest.test_case "interrupted+resumed == one-shot" `Slow test_resume_determinism ] );
      ( "streaming",
        [
          Alcotest.test_case "fold_jsonl == read_jsonl" `Quick test_fold_jsonl_matches_read;
          Alcotest.test_case "diff_jsonl self-empty" `Quick test_diff_jsonl_self_empty;
        ] );
      ( "plan-cache",
        [
          Alcotest.test_case "lru bound + evictions" `Quick test_plan_cache_lru;
          Alcotest.test_case "unbounded by default" `Quick test_plan_cache_unbounded_default;
        ] );
      ( "analyze",
        [
          Alcotest.test_case "matches committed artifact" `Slow test_analyze_matches_committed;
          Alcotest.test_case "jobs-independent + flat==store" `Slow test_analyze_jobs_independent;
        ] );
    ]
