(* Nab_stream vs the serial driver: the streaming session layer must be a
   pure scheduling transformation — decisions, disputes and graph evolution
   byte-identical to running Nab.session_broadcast q times, on both
   transport backends, whatever the window/batch geometry. *)

open Nab_graph
open Nab_core
open Nab_net

let k4 = Gen.complete ~n:4 ~cap:2
let k7 = Gen.complete ~n:7 ~cap:1
let chords7 = Gen.ring_with_chords ~n:7 ~cap:2 ~chord_cap:2
let dumbbell = Gen.dumbbell ~clique:3 ~clique_cap:4 ~bridge_cap:1

let input_fn ~l ~seed k =
  let st = Random.State.make [| seed; k |] in
  Bitvec.init l (fun _ -> Random.State.bool st)

let check_instance ~label (a : Nab.instance_report) (b : Nab.instance_report) =
  let pre = Printf.sprintf "%s k=%d" label a.Nab.k in
  Alcotest.(check int) (pre ^ " k") a.Nab.k b.Nab.k;
  Alcotest.(check int) (pre ^ " value_bits") a.Nab.value_bits b.Nab.value_bits;
  Alcotest.(check int) (pre ^ " gamma") a.Nab.gamma_k b.Nab.gamma_k;
  Alcotest.(check int) (pre ^ " rho") a.Nab.rho_k b.Nab.rho_k;
  Alcotest.(check bool) (pre ^ " mismatch") a.Nab.mismatch b.Nab.mismatch;
  Alcotest.(check bool) (pre ^ " dc_run") a.Nab.dc_run b.Nab.dc_run;
  Alcotest.(check bool)
    (pre ^ " reduced")
    a.Nab.reduced_to_phase1 b.Nab.reduced_to_phase1;
  Alcotest.(check (list (pair int string)))
    (pre ^ " decisions")
    (List.map (fun (v, bv) -> (v, Bitvec.to_hex bv)) a.Nab.decisions)
    (List.map (fun (v, bv) -> (v, Bitvec.to_hex bv)) b.Nab.decisions);
  Alcotest.(check int)
    (pre ^ " new_disputes")
    (List.length a.Nab.new_disputes)
    (List.length b.Nab.new_disputes);
  List.iter2
    (fun (x, y) (x', y') ->
      Alcotest.(check (pair int int)) (pre ^ " dispute pair") (x, y) (x', y'))
    a.Nab.new_disputes b.Nab.new_disputes

let check_equiv ?(transport = Sim.default_factory) ?window ?flag_batch ~g ~config
    ~adversary ~q ~label () =
  let inputs = input_fn ~l:config.Nab.l_bits ~seed:(17 + q) in
  let serial = Nab.run ~transport ~g ~config ~adversary ~inputs ~q () in
  let stream =
    Nab_stream.run ~transport ?window ?flag_batch ~g ~config ~adversary ~inputs ~q ()
  in
  let s = stream.Nab_stream.run in
  Alcotest.(check int)
    (label ^ " instance count")
    (List.length serial.Nab.instances)
    (List.length s.Nab.instances);
  List.iter2 (fun a b -> check_instance ~label a b) serial.Nab.instances s.Nab.instances;
  Alcotest.(check int) (label ^ " dc_count") serial.Nab.dc_count s.Nab.dc_count;
  Alcotest.(check int)
    (label ^ " disputes")
    (List.length serial.Nab.disputes)
    (List.length s.Nab.disputes);
  Alcotest.(check bool)
    (label ^ " final graph")
    true
    (Digraph.equal serial.Nab.final_graph s.Nab.final_graph)

(* Adversaries whose step-2.2/DC hooks are honest: safe under flag batching. *)
let batch_safe =
  [
    ("none", Adversary.none);
    ("dormant", Adversary.dormant);
    ("crash", Adversary.crash);
    ("phase1-corrupt", Adversary.phase1_corrupt);
    ("source-equivocate", Adversary.source_equivocate);
    ("ec-liar", Adversary.ec_liar);
    ("stealthy", Adversary.stealthy);
  ]

(* Flag/DC-tampering adversaries need flag_batch = 1 for exact fidelity. *)
let serial_only = [ ("false-flag", Adversary.false_flag); ("dc-frame", Adversary.dc_frame) ]

let test_stream_matches_serial_sync () =
  let config = Nab.config ~l_bits:256 ~m:8 () in
  List.iter
    (fun (name, adversary) ->
      List.iter
        (fun (g, gname) ->
          check_equiv ~g ~config ~adversary ~q:6
            ~label:(Printf.sprintf "%s/%s" name gname)
            ())
        [ (k4, "K4"); (chords7, "chords7"); (dumbbell, "dumbbell") ])
    batch_safe

let test_stream_matches_serial_flagged () =
  let config = Nab.config ~l_bits:256 ~m:8 () in
  List.iter
    (fun (name, adversary) ->
      check_equiv ~g:k4 ~config ~adversary ~q:6 ~flag_batch:1
        ~label:(name ^ "/K4/batch1") ())
    serial_only

let test_stream_matches_serial_async () =
  let transport = Async_sim.factory () in
  let config = Nab.config ~l_bits:256 ~m:8 () in
  List.iter
    (fun (name, adversary) ->
      check_equiv ~transport ~g:k4 ~config ~adversary ~q:5
        ~label:(name ^ "/K4/async") ())
    [ ("none", Adversary.none); ("ec-liar", Adversary.ec_liar) ];
  check_equiv ~transport ~g:chords7 ~config ~adversary:Adversary.stealthy ~q:5
    ~label:"stealthy/chords7/async" ()

let test_stream_window_geometry () =
  (* The schedule must not affect decisions: every window/batch split
     agrees with the serial run, including window = 1 (pure admission
     serialisation) and a window wider than the queue. *)
  let config = Nab.config ~l_bits:128 ~m:8 () in
  List.iter
    (fun (window, flag_batch) ->
      check_equiv ~g:k4 ~config ~adversary:Adversary.ec_liar ~q:7 ~window ?flag_batch
        ~label:(Printf.sprintf "w%d" window)
        ())
    [ (1, None); (2, Some 1); (3, Some 2); (16, None) ]

let test_stream_f2_exclusion () =
  (* f = 2 on K7: stealthy triggers repeated dispute control, eventually
     excluding nodes; rollback must track the graph evolution exactly. *)
  let config = Nab.config ~f:2 ~l_bits:64 ~m:4 () in
  check_equiv ~g:k7 ~config ~adversary:Adversary.stealthy ~q:10 ~window:4
    ~label:"stealthy/K7/f2" ()

let test_stream_backpressure () =
  let config = Nab.config ~l_bits:128 ~m:8 () in
  let t =
    Nab_stream.create ~window:2 ~g:k4 ~config ~adversary:Adversary.none ()
  in
  let inputs = input_fn ~l:128 ~seed:3 in
  for k = 1 to 9 do
    ignore (Nab_stream.submit t (inputs k))
  done;
  Alcotest.(check bool) "backpressure queues" true (Nab_stream.pending t > 2);
  Nab_stream.drain t;
  Alcotest.(check int) "all finalized" 0 (Nab_stream.pending t);
  let r = Nab_stream.report t in
  Alcotest.(check int) "delivered" 9 r.Nab_stream.delivered;
  Alcotest.(check bool) "agreement" true (Nab.fault_free_agree r.Nab_stream.run);
  Alcotest.(check bool) "validity" true
    (Nab.valid_outputs r.Nab_stream.run ~inputs)

let test_stream_multi_source () =
  (* Values submitted from several origins in one session: agreement and
     validity hold per instance, ids stay dense, plans are cached per
     (graph, source). *)
  let config = Nab.config ~l_bits:128 ~m:8 () in
  let t = Nab_stream.create ~g:chords7 ~config ~adversary:Adversary.none () in
  let inputs = input_fn ~l:128 ~seed:11 in
  let sources = [| 1; 3; 5; 1; 7 |] in
  Array.iteri (fun i s -> ignore (Nab_stream.submit t ~source:s (inputs i))) sources;
  Nab_stream.drain t;
  let r = Nab_stream.report t in
  Alcotest.(check int) "delivered" 5 r.Nab_stream.delivered;
  Alcotest.(check bool) "agreement" true (Nab.fault_free_agree r.Nab_stream.run);
  let by_k =
    List.sort
      (fun (a : Nab.instance_report) b -> compare a.Nab.k b.Nab.k)
      r.Nab_stream.run.Nab.instances
  in
  List.iteri
    (fun i (inst : Nab.instance_report) ->
      Alcotest.(check int) "dense ids" (i + 1) inst.Nab.k;
      let expect = Bitvec.to_hex (inputs i) in
      List.iter
        (fun (_, bv) ->
          Alcotest.(check string) "multi-source validity" expect (Bitvec.to_hex bv))
        inst.Nab.decisions)
    by_k

let test_stream_goodput_amortizes () =
  (* The whole point: a long queue beats one-at-a-time serial broadcast. *)
  let config = Nab.config ~l_bits:512 ~m:8 () in
  let inputs = input_fn ~l:512 ~seed:5 in
  let serial = Nab.run ~g:chords7 ~config ~adversary:Adversary.none ~inputs ~q:8 () in
  let stream =
    Nab_stream.run ~g:chords7 ~config ~adversary:Adversary.none ~inputs ~q:8 ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "stream %.0f < serial %.0f" stream.Nab_stream.wall
       serial.Nab.total_wall)
    true
    (stream.Nab_stream.wall < serial.Nab.total_wall)

let () =
  Alcotest.run "stream"
    [
      ( "equivalence",
        [
          Alcotest.test_case "sync backend, batch-safe zoo" `Quick
            test_stream_matches_serial_sync;
          Alcotest.test_case "flag adversaries at flag_batch=1" `Quick
            test_stream_matches_serial_flagged;
          Alcotest.test_case "async backend" `Quick test_stream_matches_serial_async;
          Alcotest.test_case "window/batch geometry" `Quick
            test_stream_window_geometry;
          Alcotest.test_case "f=2 exclusions" `Quick test_stream_f2_exclusion;
        ] );
      ( "stream",
        [
          Alcotest.test_case "backpressure window" `Quick test_stream_backpressure;
          Alcotest.test_case "multi-source session" `Quick test_stream_multi_source;
          Alcotest.test_case "goodput amortizes" `Quick test_stream_goodput_amortizes;
        ] );
    ]
