(* Tests for Bitvec and Coding (Theorem 1 / Appendix C), plus the
   Equality Check module in isolation. *)

open Nab_graph
open Nab_net
open Nab_core

let qtest ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ---------- Bitvec ---------- *)

let test_bitvec_basics () =
  let v = Bitvec.create 10 in
  Alcotest.(check int) "length" 10 (Bitvec.length v);
  Alcotest.(check bool) "zero" false (Bitvec.get v 3);
  let v = Bitvec.set v 3 true in
  Alcotest.(check bool) "set" true (Bitvec.get v 3);
  Alcotest.(check bool) "functional update" false (Bitvec.get (Bitvec.create 10) 3);
  Alcotest.check_raises "oob" (Invalid_argument "Bitvec.get: out of range") (fun () ->
      ignore (Bitvec.get v 10))

let bv_gen bits =
  QCheck2.Gen.(
    int_range 0 100_000 >>= fun seed ->
    return (Bitvec.random bits (Random.State.make [| seed |])))

let test_split_concat_roundtrip =
  qtest "split/concat roundtrip" (bv_gen 48) (fun v ->
      List.for_all
        (fun parts -> Bitvec.equal v (Bitvec.concat (Bitvec.split v ~parts)))
        [ 1; 2; 3; 4; 6; 8; 12 ])

let test_symbols_roundtrip =
  qtest "to/of symbols roundtrip" (bv_gen 48) (fun v ->
      List.for_all
        (fun sym_bits ->
          let syms = Bitvec.to_symbols v ~sym_bits in
          Bitvec.equal v (Bitvec.of_symbols ~sym_bits syms)
          && Array.for_all (fun s -> s >= 0 && s < 1 lsl sym_bits) syms)
        [ 1; 2; 3; 4; 6; 8; 12; 16; 24; 48 ])

(* Bit-by-bit references for the blit fast paths. Building them with [init]
   also pins the padding-bits-zero invariant: [Bitvec.equal] is structural
   on the packed bytes, so a fast path leaving junk in the last byte fails
   these even when every addressable bit agrees. *)
let concat_ref parts =
  let total = List.fold_left (fun acc p -> acc + Bitvec.length p) 0 parts in
  let arr = Array.make total false in
  let pos = ref 0 in
  List.iter
    (fun p ->
      for i = 0 to Bitvec.length p - 1 do
        arr.(!pos + i) <- Bitvec.get p i
      done;
      pos := !pos + Bitvec.length p)
    parts;
  Bitvec.init total (fun i -> arr.(i))

let slice_ref v ~pos ~len = Bitvec.init len (fun i -> Bitvec.get v (pos + i))

let test_concat_matches_reference =
  (* Mixed lengths so parts start both byte-aligned and mid-byte. *)
  qtest "concat = bit-by-bit reference"
    QCheck2.Gen.(
      list_size (int_range 0 6) (int_range 0 40) >>= fun lens ->
      int_range 0 100_000 >>= fun seed ->
      let st = Random.State.make [| seed |] in
      return (List.map (fun l -> Bitvec.random l st) lens))
    (fun parts -> Bitvec.equal (concat_ref parts) (Bitvec.concat parts))

let test_slice_matches_reference =
  qtest "slice = bit-by-bit reference"
    QCheck2.Gen.(
      int_range 0 80 >>= fun total ->
      int_range 0 total >>= fun pos ->
      int_range 0 (total - pos) >>= fun len ->
      int_range 0 100_000 >>= fun seed ->
      return (Bitvec.random total (Random.State.make [| seed |]), pos, len))
    (fun (v, pos, len) ->
      Bitvec.equal (slice_ref v ~pos ~len) (Bitvec.slice v ~pos ~len))

let test_slice_aligned_exact () =
  (* Deterministic probes of the byte-aligned fast path, including a
     non-multiple-of-8 length whose padding must come out clean. *)
  let v = Bitvec.of_string "\xA5\x3C\x7E" in
  List.iter
    (fun (pos, len) ->
      Alcotest.(check bool)
        (Printf.sprintf "slice pos=%d len=%d" pos len)
        true
        (Bitvec.equal (slice_ref v ~pos ~len) (Bitvec.slice v ~pos ~len)))
    [ (0, 24); (8, 16); (16, 8); (8, 11); (0, 3); (5, 13); (23, 1); (24, 0) ]

let test_slice_semantics () =
  let v = Bitvec.of_string "\xF0" in
  Alcotest.(check int) "8 bits" 8 (Bitvec.length v);
  Alcotest.(check bool) "msb first" true (Bitvec.get v 0);
  Alcotest.(check bool) "low half" false (Bitvec.get v 4);
  let hi = Bitvec.slice v ~pos:0 ~len:4 in
  Alcotest.(check (array int)) "hi nibble" [| 0xF |] (Bitvec.to_symbols hi ~sym_bits:4)

let test_pad_to () =
  let v = Bitvec.of_string "\xFF" in
  let p = Bitvec.pad_to v 12 in
  Alcotest.(check int) "padded length" 12 (Bitvec.length p);
  Alcotest.(check bool) "original preserved" true (Bitvec.get p 7);
  Alcotest.(check bool) "padding zero" false (Bitvec.get p 11);
  Alcotest.(check bool) "same when equal" true (Bitvec.equal v (Bitvec.pad_to v 8))

let test_bitvec_random_padding_clean () =
  (* Equality must be structural: random values with the same bits compare
     correctly because padding bits are cleared. *)
  let st = Random.State.make [| 1 |] in
  for _ = 1 to 50 do
    let v = Bitvec.random 13 st in
    let w = Bitvec.of_symbols ~sym_bits:13 (Bitvec.to_symbols v ~sym_bits:13) in
    Alcotest.(check bool) "roundtrip equal" true (Bitvec.equal v w)
  done

(* ---------- Coding ---------- *)

let k4 = Gen.complete ~n:4 ~cap:2
let omega4 = Params.omega_k k4 ~total_n:4 ~f:1 ~disputes:[]
let rho4 = Params.rho_k k4 ~total_n:4 ~f:1 ~disputes:[]

let test_generate_deterministic () =
  let a = Coding.generate k4 ~rho:rho4 ~m:8 ~seed:3 in
  let b = Coding.generate k4 ~rho:rho4 ~m:8 ~seed:3 in
  let c = Coding.generate k4 ~rho:rho4 ~m:8 ~seed:4 in
  List.iter
    (fun (s, d, _) ->
      Alcotest.(check bool) "same seed same matrix" true
        (Nab_matrix.Matrix.equal
           (Coding.matrix a ~edge:(s, d))
           (Coding.matrix b ~edge:(s, d))))
    (Digraph.edges k4);
  Alcotest.(check bool) "different seed differs" true
    (List.exists
       (fun (s, d, _) ->
         not
           (Nab_matrix.Matrix.equal
              (Coding.matrix a ~edge:(s, d))
              (Coding.matrix c ~edge:(s, d))))
       (Digraph.edges k4))

let test_matrix_shape () =
  let c = Coding.generate k4 ~rho:rho4 ~m:8 ~seed:3 in
  let m12 = Coding.matrix c ~edge:(1, 2) in
  Alcotest.(check int) "rho rows" rho4 (Nab_matrix.Matrix.rows m12);
  Alcotest.(check int) "z_e cols" 2 (Nab_matrix.Matrix.cols m12);
  Alcotest.check_raises "non-edge" Not_found (fun () ->
      ignore (Coding.matrix c ~edge:(1, 99)))

let test_encode_linearity =
  let c = Coding.generate k4 ~rho:rho4 ~m:8 ~seed:3 in
  let fld = Coding.field c in
  qtest "encode is linear"
    QCheck2.Gen.(
      pair
        (list_repeat rho4 (int_bound 255))
        (list_repeat rho4 (int_bound 255)))
    (fun (xs, ys) ->
      let x = Array.of_list xs and y = Array.of_list ys in
      let open Nab_field in
      let sum = Array.mapi (fun i xi -> Gf2p.add fld xi y.(i)) x in
      let ex = Coding.encode c ~edge:(1, 2) x in
      let ey = Coding.encode c ~edge:(1, 2) y in
      let esum = Coding.encode c ~edge:(1, 2) sum in
      Array.length ex = 2
      && esum = Array.mapi (fun i v -> Gf2p.add fld v ey.(i)) ex)

let test_encode_striping () =
  let c = Coding.generate k4 ~rho:rho4 ~m:8 ~seed:3 in
  (* Encoding 3 stripes = concatenating the three per-stripe encodings. *)
  let st = Random.State.make [| 9 |] in
  let stripes = Array.init 3 (fun _ -> Array.init rho4 (fun _ -> Random.State.int st 256)) in
  let x = Array.concat (Array.to_list stripes) in
  let all = Coding.encode c ~edge:(1, 2) x in
  Array.iteri
    (fun s stripe ->
      let part = Coding.encode c ~edge:(1, 2) stripe in
      Alcotest.(check (array int))
        (Printf.sprintf "stripe %d" s)
        part
        (Array.sub all (s * Array.length part) (Array.length part)))
    stripes

let test_check_own_value =
  let c = Coding.generate k4 ~rho:rho4 ~m:8 ~seed:3 in
  qtest "check accepts own encoding, rejects corrupt"
    QCheck2.Gen.(list_repeat rho4 (int_bound 255))
    (fun xs ->
      let x = Array.of_list xs in
      let y = Coding.encode c ~edge:(1, 2) x in
      let corrupt = Array.copy y in
      corrupt.(0) <- corrupt.(0) lxor 1;
      Coding.check c ~edge:(1, 2) ~x ~received:y
      && (not (Coding.check c ~edge:(1, 2) ~x ~received:corrupt))
      && not (Coding.check c ~edge:(1, 2) ~x ~received:(Array.sub y 0 1)))

let test_expanded_matrix_shape () =
  let c = Coding.generate k4 ~rho:rho4 ~m:8 ~seed:3 in
  let h = Digraph.induced k4 (List.hd omega4) in
  let ch = Coding.expanded_matrix c ~h in
  Alcotest.(check int) "rows = (|H|-1) rho" ((3 - 1) * rho4) (Nab_matrix.Matrix.rows ch);
  Alcotest.(check int) "cols = sum of caps" (Digraph.total_capacity h)
    (Nab_matrix.Matrix.cols ch)

let test_generate_correct_is_correct () =
  let c, attempts = Coding.generate_correct k4 ~omega:omega4 ~rho:rho4 ~m:8 ~seed:1 () in
  Alcotest.(check bool) "verified" true (Coding.is_correct c ~g:k4 ~omega:omega4);
  Alcotest.(check bool) "few attempts" true (attempts <= 3)

(* The (EC) property end-to-end: with verified-correct matrices, whenever the
   values of a candidate fault-free subgraph H differ, some check inside H
   fails. Exhaustive over single-symbol differences, randomised otherwise. *)
let test_ec_property_detects_differences () =
  let c, _ = Coding.generate_correct k4 ~omega:omega4 ~rho:rho4 ~m:8 ~seed:1 () in
  let st = Random.State.make [| 77 |] in
  for _ = 1 to 200 do
    let values = Hashtbl.create 4 in
    List.iter
      (fun v -> Hashtbl.replace values v (Array.init rho4 (fun _ -> Random.State.int st 256)))
      (Digraph.vertices k4);
    (* Force at least two nodes to differ. *)
    let all_equal =
      let v1 = Hashtbl.find values 1 in
      List.for_all (fun v -> Hashtbl.find values v = v1) (Digraph.vertices k4)
    in
    if not all_equal then begin
      (* In every H of Omega whose members are not all equal, a check must
         fail on some edge of H. *)
      List.iter
        (fun hset ->
          let h = Digraph.induced k4 hset in
          let members = Digraph.vertices h in
          let v0 = Hashtbl.find values (List.hd members) in
          let h_differs =
            List.exists (fun v -> Hashtbl.find values v <> v0) members
          in
          if h_differs then begin
            let some_check_fails =
              List.exists
                (fun (i, j, _) ->
                  let yi = Coding.encode c ~edge:(i, j) (Hashtbl.find values i) in
                  not (Coding.check c ~edge:(i, j) ~x:(Hashtbl.find values j) ~received:yi))
                (Digraph.edges h)
            in
            Alcotest.(check bool) "difference detected inside H" true some_check_fails
          end)
        omega4
    end
  done

(* The (EC) property on random feasible networks, end to end: verified
   matrices detect any value disagreement among each candidate fault-free
   subgraph. *)
let test_ec_property_random_graphs =
  qtest ~count:15 "(EC) on random networks"
    (QCheck2.Gen.int_range 0 300)
    (fun gseed ->
      let g = Gen.random_bb_feasible ~n:5 ~f:1 ~p:0.8 ~min_cap:1 ~max_cap:3 ~seed:gseed in
      let omega = Params.omega_k g ~total_n:5 ~f:1 ~disputes:[] in
      let rho = Params.rho_k g ~total_n:5 ~f:1 ~disputes:[] in
      rho < 1
      ||
      let c, _ = Coding.generate_correct g ~omega ~rho ~m:8 ~seed:gseed () in
      let st = Random.State.make [| gseed; 17 |] in
      List.for_all
        (fun _ ->
          let values = Hashtbl.create 8 in
          List.iter
            (fun v ->
              Hashtbl.replace values v (Array.init rho (fun _ -> Random.State.int st 256)))
            (Digraph.vertices g);
          List.for_all
            (fun hset ->
              let h = Digraph.induced g hset in
              let members = Digraph.vertices h in
              let v0 = Hashtbl.find values (List.hd members) in
              let differs = List.exists (fun v -> Hashtbl.find values v <> v0) members in
              (not differs)
              || List.exists
                   (fun (i, j, _) ->
                     let yi = Coding.encode c ~edge:(i, j) (Hashtbl.find values i) in
                     not
                       (Coding.check c ~edge:(i, j) ~x:(Hashtbl.find values j)
                          ~received:yi))
                   (Digraph.edges h))
            omega)
        (List.init 10 Fun.id))

(* Negative control: a rank-deficient C_H has a blind spot. Construct values
   from a left-kernel vector of C_H: they differ, yet every check inside H
   passes — exactly the failure Theorem 1 bounds and the verification step
   excludes. Demonstrates the rank condition is the precise boundary. *)
let test_incorrect_matrices_have_blind_spot () =
  (* Hunt for an incorrect matrix set at m = 1 (failure probability is high
     there). *)
  let rec find seed =
    if seed > 2000 then None
    else begin
      let c = Coding.generate k4 ~rho:rho4 ~m:1 ~seed in
      let bad =
        List.find_opt (fun hset -> not (Coding.correct_for c ~h:(Digraph.induced k4 hset))) omega4
      in
      match bad with Some hset -> Some (c, hset) | None -> find (seed + 1)
    end
  in
  match find 1 with
  | None -> Alcotest.fail "no incorrect matrix set found at m=1 in 2000 draws"
  | Some (c, hset) ->
      let h = Digraph.induced k4 hset in
      let ch = Coding.expanded_matrix c ~h in
      let f1 = Coding.field c in
      (* Left kernel of C_H = kernel of its transpose. *)
      let kernel = Nab_matrix.Gauss.kernel_basis f1 (Nab_matrix.Matrix.transpose ch) in
      (match kernel with
      | [] -> Alcotest.fail "rank-deficient C_H must have a left-kernel vector"
      | dh :: _ ->
          (* D_H = [D_1 .. D_(n-f-1)], each D_i of rho symbols; the reference
             node (largest in H) holds zero. *)
          let members = Digraph.vertices h in
          let reference = List.nth members (List.length members - 1) in
          let non_ref = List.filter (fun v -> v <> reference) members in
          let value_of = Hashtbl.create 4 in
          Hashtbl.replace value_of reference (Array.make rho4 0);
          List.iteri
            (fun i v -> Hashtbl.replace value_of v (Array.sub dh (i * rho4) rho4))
            non_ref;
          let values_differ =
            List.exists
              (fun v -> Hashtbl.find value_of v <> Hashtbl.find value_of reference)
              non_ref
          in
          Alcotest.(check bool) "kernel values differ" true values_differ;
          (* Every check inside H passes: the blind spot. *)
          List.iter
            (fun (i, j, _) ->
              let yi = Coding.encode c ~edge:(i, j) (Hashtbl.find value_of i) in
              Alcotest.(check bool)
                (Printf.sprintf "check on (%d,%d) blind" i j)
                true
                (Coding.check c ~edge:(i, j) ~x:(Hashtbl.find value_of j) ~received:yi))
            (Digraph.edges h))

let test_failure_bound () =
  (* Monotone decreasing in m, and matches the Theorem 1 formula. *)
  let b8 = Coding.failure_bound ~n:4 ~f:1 ~rho:4 ~m:8 in
  let b16 = Coding.failure_bound ~n:4 ~f:1 ~rho:4 ~m:16 in
  Alcotest.(check bool) "monotone" true (b16 < b8);
  (* C(4,3) * (4-1-1) * 4 / 2^8 = 4 * 2 * 4 / 256 = 0.125 *)
  Alcotest.(check (float 1e-9)) "formula" 0.125 b8;
  Alcotest.(check (float 1e-9)) "caps at 1" 1.0 (Coding.failure_bound ~n:4 ~f:1 ~rho:4 ~m:1)

(* Theorem 1 empirically: the fraction of random matrix sets that are NOT
   correct is at most the bound (within statistical noise). *)
let test_theorem1_empirical () =
  List.iter
    (fun m ->
      let trials = 300 in
      let failures = ref 0 in
      for seed = 1 to trials do
        let c = Coding.generate k4 ~rho:rho4 ~m ~seed in
        if not (Coding.is_correct c ~g:k4 ~omega:omega4) then incr failures
      done;
      let rate = float_of_int !failures /. float_of_int trials in
      let bound = Coding.failure_bound ~n:4 ~f:1 ~rho:rho4 ~m in
      (* Allow generous statistical slack: rate <= bound + 3 sigma + 2%. *)
      let sigma = sqrt (bound *. (1.0 -. bound) /. float_of_int trials) in
      Alcotest.(check bool)
        (Printf.sprintf "m=%d rate %.3f <= bound %.3f (+slack)" m rate bound)
        true
        (rate <= bound +. (3.0 *. sigma) +. 0.02))
    [ 4; 6; 8 ]

(* ---------- Appendix C constructive machinery ---------- *)

let test_appendix_c_column_index () =
  let h = Digraph.induced k4 (List.hd omega4) in
  let idx = Appendix_c.column_index ~h in
  Alcotest.(check int) "one offset per edge" (Digraph.num_edges h) (List.length idx);
  (* Offsets are the prefix sums of capacities in edge order. *)
  let rec check off = function
    | [] -> ()
    | ((s, d), o) :: rest ->
        Alcotest.(check int) (Printf.sprintf "offset of (%d,%d)" s d) off o;
        check (off + Digraph.cap h s d) rest
  in
  check 0 idx

let test_adjacency_matrix_invertible () =
  (* Appendix C.3: A_q is invertible for every spanning tree (det +-1 = 1 in
     characteristic 2). Exhaust all spanning trees' arc choices on a
     triangle subgraph. *)
  let h = Digraph.induced k4 (List.hd omega4) in
  let fld = Nab_field.Gf2p.create 8 in
  let verts = Digraph.vertices h in
  let pairs =
    List.concat_map
      (fun a -> List.filter_map (fun b -> if a < b then Some (a, b) else None) verts)
      verts
  in
  (* All 2-subsets of the 3 undirected pairs that form a spanning tree. *)
  List.iter
    (fun (e1, e2) ->
      if e1 <> e2 then begin
        let arcs = [ e1; e2 ] in
        let covered =
          List.sort_uniq compare (List.concat_map (fun (a, b) -> [ a; b ]) arcs)
        in
        if List.length covered = 3 then begin
          let a = Appendix_c.adjacency_matrix fld ~h ~tree_arcs:arcs in
          Alcotest.(check bool)
            (Printf.sprintf "A_q invertible for %s"
               (String.concat ","
                  (List.map (fun (x, y) -> Printf.sprintf "%d-%d" x y) arcs)))
            true
            (Nab_matrix.Gauss.is_invertible fld a)
        end
      end)
    (List.concat_map (fun e1 -> List.map (fun e2 -> (e1, e2)) pairs) pairs)

let test_certify_agrees_with_rank () =
  (* certify = Some true must imply correct_for; on verified-correct coding
     it should certify every Omega subgraph. *)
  let c, _ = Coding.generate_correct k4 ~omega:omega4 ~rho:rho4 ~m:8 ~seed:1 () in
  List.iter
    (fun hset ->
      let h = Digraph.induced k4 hset in
      match Appendix_c.certify c ~h with
      | Some true -> Alcotest.(check bool) "rank agrees" true (Coding.correct_for c ~h)
      | Some false ->
          (* Inconclusive for this column choice, but the rank test must
             still pass since the coding was verified. *)
          Alcotest.(check bool) "rank still full" true (Coding.correct_for c ~h)
      | None -> Alcotest.fail "greedy spanning packing failed on K4 subgraph")
    omega4

let test_certify_mostly_succeeds () =
  (* Theorem 1: random matrices make M_H invertible with probability
     >= 1 - (n-f-1) rho / 2^m; at m = 12 that is >= 99.8%. *)
  let trials = 100 in
  let ok = ref 0 in
  for seed = 1 to trials do
    let c = Coding.generate k4 ~rho:rho4 ~m:12 ~seed in
    if
      List.for_all
        (fun hset -> Appendix_c.certify c ~h:(Digraph.induced k4 hset) = Some true)
        omega4
    then incr ok
  done;
  Alcotest.(check bool)
    (Printf.sprintf "certification rate %d/%d" !ok trials)
    true
    (float_of_int !ok >= 0.95 *. float_of_int trials)

let test_spanning_choices_disjoint () =
  let h = Digraph.induced k4 (List.hd omega4) in
  match Appendix_c.choose_spanning_matrices ~h ~rho:rho4 with
  | None -> Alcotest.fail "no packing found"
  | Some choices ->
      Alcotest.(check int) "rho trees" rho4 (List.length choices);
      let all_cols = List.concat_map (fun c -> c.Appendix_c.columns) choices in
      Alcotest.(check int) "columns pairwise distinct"
        (List.length all_cols)
        (List.length (List.sort_uniq compare all_cols));
      let total_cols = Digraph.total_capacity h in
      List.iter
        (fun col ->
          Alcotest.(check bool) "column in range" true (col >= 0 && col < total_cols))
        all_cols;
      (* Each choice has |h| - 1 arcs, all arcs of h. *)
      List.iter
        (fun ch ->
          Alcotest.(check int) "tree size" 2 (List.length ch.Appendix_c.arcs);
          List.iter
            (fun (s, d) ->
              Alcotest.(check bool) "arc exists" true (Digraph.mem_edge h s d))
            ch.Appendix_c.arcs)
        choices

(* ---------- Equality check in isolation ---------- *)

let test_ec_no_mismatch_when_equal () =
  let c, _ = Coding.generate_correct k4 ~omega:omega4 ~rho:rho4 ~m:8 ~seed:1 () in
  let sim = Sim.create k4 ~bits:Packet.bits in
  let x = Array.init rho4 (fun i -> i + 1) in
  let flags =
    Equality_check.run ~net:(Sim.transport sim) ~phase:"ec" ~coding:c ~values:(fun _ -> x)
      ~faulty:Vset.empty ()
  in
  List.iter (fun (v, f) -> Alcotest.(check bool) (Printf.sprintf "node %d" v) false f) flags;
  (* Timing: each link carries z_e syms * 8 bits / cap z_e -> 8 = L/rho. *)
  Alcotest.(check (float 1e-9)) "duration L/rho" 8.0 ((Sim.timing sim).Sim.wall)

let test_ec_detects_differing_values () =
  let c, _ = Coding.generate_correct k4 ~omega:omega4 ~rho:rho4 ~m:8 ~seed:1 () in
  let st = Random.State.make [| 5 |] in
  for _ = 1 to 100 do
    let base = Array.init rho4 (fun _ -> Random.State.int st 256) in
    let other = Array.copy base in
    other.(Random.State.int st rho4) <- Random.State.int st 256;
    if other <> base then begin
      let odd = 1 + Random.State.int st 3 in
      let sim = Sim.create k4 ~bits:Packet.bits in
      let flags =
        Equality_check.run ~net:(Sim.transport sim) ~phase:"ec" ~coding:c
          ~values:(fun v -> if v = odd then other else base)
          ~faulty:Vset.empty ()
      in
      Alcotest.(check bool) "someone flags" true (List.exists snd flags)
    end
  done

(* Paper-exact timing: the equality check takes exactly L/rho time units on
   any graph — every edge e carries z_e symbols per stripe, so bits/capacity
   is identical on every link (eq. 3). *)
let test_ec_duration_exact =
  qtest ~count:25 "equality check lasts exactly L/rho"
    (QCheck2.Gen.pair (QCheck2.Gen.int_range 0 200) (QCheck2.Gen.int_range 1 3))
    (fun (gseed, stripes) ->
      let g = Gen.random_bb_feasible ~n:5 ~f:1 ~p:0.8 ~min_cap:1 ~max_cap:4 ~seed:gseed in
      let rho = Params.rho_k g ~total_n:5 ~f:1 ~disputes:[] in
      rho < 1
      ||
      let m = 8 in
      let omega = Params.omega_k g ~total_n:5 ~f:1 ~disputes:[] in
      let c, _ = Coding.generate_correct g ~omega ~rho ~m ~seed:gseed () in
      let st = Random.State.make [| gseed |] in
      let x = Array.init (stripes * rho) (fun _ -> Random.State.int st 256) in
      let sim = Sim.create g ~bits:Packet.bits in
      let (_ : (int * bool) list) =
        Equality_check.run ~net:(Sim.transport sim) ~phase:"ec" ~coding:c ~values:(fun _ -> x)
          ~faulty:Vset.empty ()
      in
      let l = stripes * rho * m in
      Float.abs ((Sim.timing sim).Sim.wall -. (float_of_int l /. float_of_int rho)) < 1e-9)

(* Phase-1 per-hop cost never exceeds L/gamma on any graph (the packing is
   capacity-disjoint). *)
let test_phase1_hop_bound =
  qtest ~count:25 "phase-1 hop cost <= L/gamma"
    (QCheck2.Gen.int_range 0 200)
    (fun gseed ->
      let g = Gen.random_bb_feasible ~n:5 ~f:1 ~p:0.8 ~min_cap:1 ~max_cap:4 ~seed:gseed in
      let gamma = Params.gamma_k g ~source:1 in
      let trees = Arborescence.pack g ~root:1 ~k:gamma in
      let l = gamma * 24 in
      let value = Bitvec.random l (Random.State.make [| gseed |]) in
      let sim = Sim.create g ~bits:Packet.bits in
      let (_ : int -> Wire.payload option array) =
        Phase1.run ~net:(Sim.transport sim) ~phase:"p1" ~trees ~source:1 ~value ~faulty:Vset.empty ()
      in
      (Sim.timing sim).Sim.pipelined <= (float_of_int l /. float_of_int gamma) +. 1e-9)

let test_ec_faulty_cannot_frame_consistency () =
  (* A faulty node lying in EC triggers MISMATCH only at its own neighbours
     (it cannot tamper with honest-honest links). *)
  let c, _ = Coding.generate_correct k4 ~omega:omega4 ~rho:rho4 ~m:8 ~seed:1 () in
  let sim = Sim.create k4 ~bits:Packet.bits in
  let x = Array.init rho4 (fun i -> i * 3) in
  let adversary ~me:_ ~dst y =
    if dst = 2 then Array.map (fun s -> s lxor 1) y else y
  in
  let flags =
    Equality_check.run ~net:(Sim.transport sim) ~phase:"ec" ~coding:c ~values:(fun _ -> x)
      ~faulty:(Vset.singleton 4) ~adversary ()
  in
  Alcotest.(check bool) "victim 2 flags" true (List.assoc 2 flags);
  Alcotest.(check bool) "bystander 3 does not" false (List.assoc 3 flags)

let () =
  Alcotest.run "coding"
    [
      ( "bitvec",
        [
          Alcotest.test_case "basics" `Quick test_bitvec_basics;
          test_split_concat_roundtrip;
          test_symbols_roundtrip;
          test_concat_matches_reference;
          test_slice_matches_reference;
          Alcotest.test_case "aligned slice probes" `Quick test_slice_aligned_exact;
          Alcotest.test_case "slice semantics" `Quick test_slice_semantics;
          Alcotest.test_case "pad_to" `Quick test_pad_to;
          Alcotest.test_case "random padding clean" `Quick
            test_bitvec_random_padding_clean;
        ] );
      ( "coding",
        [
          Alcotest.test_case "deterministic generation" `Quick test_generate_deterministic;
          Alcotest.test_case "matrix shape" `Quick test_matrix_shape;
          test_encode_linearity;
          Alcotest.test_case "striping" `Quick test_encode_striping;
          test_check_own_value;
          Alcotest.test_case "expanded matrix shape" `Quick test_expanded_matrix_shape;
          Alcotest.test_case "generate_correct" `Quick test_generate_correct_is_correct;
          Alcotest.test_case "(EC) property" `Quick test_ec_property_detects_differences;
          test_ec_property_random_graphs;
          Alcotest.test_case "incorrect matrices blind spot" `Quick
            test_incorrect_matrices_have_blind_spot;
          Alcotest.test_case "failure bound formula" `Quick test_failure_bound;
          Alcotest.test_case "theorem 1 empirical" `Slow test_theorem1_empirical;
        ] );
      ( "appendix-c",
        [
          Alcotest.test_case "column index" `Quick test_appendix_c_column_index;
          Alcotest.test_case "A_q invertible" `Quick test_adjacency_matrix_invertible;
          Alcotest.test_case "certify agrees with rank" `Quick
            test_certify_agrees_with_rank;
          Alcotest.test_case "certification rate" `Quick test_certify_mostly_succeeds;
          Alcotest.test_case "spanning choices disjoint" `Quick
            test_spanning_choices_disjoint;
        ] );
      ( "equality-check",
        [
          Alcotest.test_case "no mismatch when equal" `Quick test_ec_no_mismatch_when_equal;
          Alcotest.test_case "detects differences" `Quick test_ec_detects_differing_values;
          test_ec_duration_exact;
          test_phase1_hop_bound;
          Alcotest.test_case "locality of faults" `Quick
            test_ec_faulty_cannot_frame_consistency;
        ] );
    ]
