(* Tests for Numth, Gf2p, Gf256 and Poly. *)

open Nab_field

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ---------- Numth ---------- *)

let test_is_prime_small () =
  let primes = [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41; 43; 47 ] in
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "is_prime %d" n)
        (List.mem n primes) (Numth.is_prime n))
    (List.init 48 Fun.id)

let test_is_prime_mersenne () =
  Alcotest.(check bool) "2^61-1 prime" true (Numth.is_prime ((1 lsl 61) - 1));
  Alcotest.(check bool) "2^61-3 composite" false (Numth.is_prime ((1 lsl 61) - 3));
  Alcotest.(check bool) "2^31-1 prime" true (Numth.is_prime ((1 lsl 31) - 1))

let test_factor_reconstructs () =
  List.iter
    (fun n ->
      let fs = Numth.factor n in
      let prod =
        List.fold_left
          (fun acc (p, k) ->
            Alcotest.(check bool) (Printf.sprintf "%d prime" p) true (Numth.is_prime p);
            let rec pow b e = if e = 0 then 1 else b * pow b (e - 1) in
            acc * pow p k)
          1 fs
      in
      Alcotest.(check int) (Printf.sprintf "factor %d" n) n prod)
    [ 1; 2; 12; 97; 1024; 3 * 5 * 17 * 257; (1 lsl 32) - 1; 600851475143; 999999999989 ]

let test_mulmod_powmod () =
  Alcotest.(check int) "mulmod" ((123456789 * 987) mod 1000003)
    (Numth.mulmod (123456789 mod 1000003) 987 1000003);
  (* Fermat: 2^(p-1) = 1 mod p *)
  let p = (1 lsl 31) - 1 in
  Alcotest.(check int) "fermat" 1 (Numth.powmod 2 (p - 1) p);
  let big = (1 lsl 61) - 1 in
  Alcotest.(check int) "fermat 2^61-1" 1 (Numth.powmod 3 (big - 1) big)

let test_prime_divisors () =
  Alcotest.(check (list int)) "60" [ 2; 3; 5 ] (Numth.prime_divisors 60);
  Alcotest.(check (list int)) "1" [] (Numth.prime_divisors 1)

let test_factor_property =
  qtest ~count:300 "factor reconstructs and yields primes"
    QCheck2.Gen.(int_range 1 1_000_000_000)
    (fun n ->
      let fs = Numth.factor n in
      let rec pow b e = if e = 0 then 1 else b * pow b (e - 1) in
      List.for_all (fun (p, k) -> k >= 1 && Numth.is_prime p) fs
      && List.fold_left (fun acc (p, k) -> acc * pow p k) 1 fs = n
      && List.sort compare (List.map fst fs) = List.map fst fs)

let test_mulmod_property =
  qtest ~count:300 "mulmod agrees with exact product"
    QCheck2.Gen.(triple (int_bound 1_000_000) (int_bound 1_000_000) (int_range 2 2_000_000))
    (fun (a, b, n) ->
      let a = a mod n and b = b mod n in
      Numth.mulmod a b n = a * b mod n)

(* ---------- Gf2p ---------- *)

let fields = List.map Gf2p.create [ 1; 2; 3; 4; 8; 13; 16; 24; 32; 48; 61 ]

let elt_gen f = QCheck2.Gen.int_bound ((1 lsl Gf2p.degree f) - 1)

let test_create_bounds () =
  Alcotest.check_raises "degree 0" (Gf2p.Invalid_degree 0) (fun () ->
      ignore (Gf2p.create 0));
  Alcotest.check_raises "degree 62" (Gf2p.Invalid_degree 62) (fun () ->
      ignore (Gf2p.create 62))

let test_known_irreducibles () =
  Alcotest.(check bool) "x^2+x+1" true (Gf2p.irreducible ~m:2 ~poly:0b111);
  Alcotest.(check bool) "x^2+1 reducible" false (Gf2p.irreducible ~m:2 ~poly:0b101);
  Alcotest.(check bool) "x^3+x+1" true (Gf2p.irreducible ~m:3 ~poly:0b1011);
  Alcotest.(check bool) "x^4+x+1" true (Gf2p.irreducible ~m:4 ~poly:0b10011);
  Alcotest.(check bool) "x^4+x^2+1 reducible" false (Gf2p.irreducible ~m:4 ~poly:0b10101);
  Alcotest.(check bool) "aes poly" true (Gf2p.irreducible ~m:8 ~poly:0x11B);
  (* x^8 + x^4 + x^3 + x^2 + 1 is also irreducible *)
  Alcotest.(check bool) "0x11D" true (Gf2p.irreducible ~m:8 ~poly:0x11D)

let test_create_with_poly_validates () =
  Alcotest.check_raises "reducible rejected"
    (Invalid_argument "Gf2p.create_with_poly: polynomial is reducible") (fun () ->
      ignore (Gf2p.create_with_poly ~m:2 ~poly:0b101))

let field_axiom_tests =
  List.concat_map
    (fun f ->
      let m = Gf2p.degree f in
      let pair = QCheck2.Gen.pair (elt_gen f) (elt_gen f) in
      let triple = QCheck2.Gen.triple (elt_gen f) (elt_gen f) (elt_gen f) in
      [
        qtest (Printf.sprintf "GF(2^%d) mul assoc" m) triple (fun (a, b, c) ->
            Gf2p.mul f (Gf2p.mul f a b) c = Gf2p.mul f a (Gf2p.mul f b c));
        qtest (Printf.sprintf "GF(2^%d) mul comm" m) pair (fun (a, b) ->
            Gf2p.mul f a b = Gf2p.mul f b a);
        qtest (Printf.sprintf "GF(2^%d) distributivity" m) triple (fun (a, b, c) ->
            Gf2p.mul f a (Gf2p.add f b c)
            = Gf2p.add f (Gf2p.mul f a b) (Gf2p.mul f a c));
        qtest (Printf.sprintf "GF(2^%d) mul identity" m) (elt_gen f) (fun a ->
            Gf2p.mul f a Gf2p.one = a);
        qtest (Printf.sprintf "GF(2^%d) add self-inverse" m) (elt_gen f) (fun a ->
            Gf2p.add f a a = Gf2p.zero);
        qtest (Printf.sprintf "GF(2^%d) inverse" m) (elt_gen f) (fun a ->
            a = 0 || Gf2p.mul f a (Gf2p.inv f a) = Gf2p.one);
        qtest (Printf.sprintf "GF(2^%d) div mul roundtrip" m) pair (fun (a, b) ->
            b = 0 || Gf2p.mul f (Gf2p.div f a b) b = a);
        qtest (Printf.sprintf "GF(2^%d) sq consistent" m) (elt_gen f) (fun a ->
            Gf2p.sq f a = Gf2p.mul f a a);
        qtest (Printf.sprintf "GF(2^%d) frobenius additive" m) pair (fun (a, b) ->
            Gf2p.sq f (Gf2p.add f a b) = Gf2p.add f (Gf2p.sq f a) (Gf2p.sq f b));
      ])
    fields

let test_pow_laws () =
  let f = Gf2p.create 16 in
  let st = Random.State.make [| 5 |] in
  for _ = 1 to 100 do
    let a = Gf2p.random_nonzero f st in
    let i = Random.State.int st 100 and j = Random.State.int st 100 in
    Alcotest.(check int) "pow add law"
      (Gf2p.pow f a (i + j))
      (Gf2p.mul f (Gf2p.pow f a i) (Gf2p.pow f a j))
  done;
  Alcotest.(check int) "x^0" Gf2p.one (Gf2p.pow f 0 0);
  (* Lagrange: a^(2^m - 1) = 1 *)
  let order_group = Gf2p.order f - 1 in
  Alcotest.(check int) "group order" Gf2p.one (Gf2p.pow f 0x1234 order_group)

(* Independent oracle: textbook shift-and-xor multiplication written here,
   guarding against bugs in the library's internal table acceleration. *)
let test_mul_against_inline_oracle () =
  List.iter
    (fun m ->
      let f = Gf2p.create m in
      let full = Gf2p.reduction_poly f in
      let taps = full land ((1 lsl m) - 1) in
      let oracle a b =
        let hi = 1 lsl (m - 1) and mask = (1 lsl m) - 1 in
        let rec go a b acc =
          if b = 0 then acc
          else
            let acc = if b land 1 = 1 then acc lxor a else acc in
            let a = if a land hi <> 0 then ((a lsl 1) land mask) lxor taps else a lsl 1 in
            go a (b lsr 1) acc
        in
        go a b 0
      in
      let st = Random.State.make [| m; 3 |] in
      for _ = 1 to 1000 do
        let a = Gf2p.random f st and b = Gf2p.random f st in
        Alcotest.(check int)
          (Printf.sprintf "m=%d: %d*%d" m a b)
          (oracle a b) (Gf2p.mul f a b)
      done)
    [ 2; 3; 8; 13; 14; 16; 32; 61 ]

let test_of_int_reduces () =
  let f = Gf2p.create 8 in
  Alcotest.(check bool) "reduced valid" true (Gf2p.is_valid f (Gf2p.of_int f 0x1FF00));
  Alcotest.(check int) "small unchanged" 0x42 (Gf2p.of_int f 0x42)

let test_generator_order () =
  List.iter
    (fun m ->
      let f = Gf2p.create m in
      let g = Gf2p.generator f in
      let n = Gf2p.order f - 1 in
      Alcotest.(check int) (Printf.sprintf "g^%d = 1 in GF(2^%d)" n m) Gf2p.one
        (Gf2p.pow f g n);
      (* g must not have smaller order: check proper divisors n/p. *)
      List.iter
        (fun p ->
          Alcotest.(check bool)
            (Printf.sprintf "g^(n/%d) <> 1" p)
            true
            (Gf2p.pow f g (n / p) <> Gf2p.one))
        (Numth.prime_divisors n))
    [ 2; 3; 4; 8; 12; 16 ]

(* ---------- Gf256 cross-check ---------- *)

let test_gf256_matches_generic () =
  let f = Gf256.field in
  for a = 0 to 255 do
    let b = (a * 37) land 0xff in
    Alcotest.(check int) "mul" (Gf2p.mul f a b) (Gf256.mul a b);
    if a > 0 then Alcotest.(check int) "inv" (Gf2p.inv f a) (Gf256.inv a)
  done

let test_gf256_log_exp () =
  for a = 1 to 255 do
    Alcotest.(check int) "exp(log a) = a" a (Gf256.exp (Gf256.log a))
  done

(* ---------- Field_intf functor ---------- *)

let test_field_intf_functor () =
  let module F = Field_intf.Make (struct
    let degree = 8
  end) in
  Alcotest.(check int) "degree" 8 (Gf2p.degree F.field);
  let st = Random.State.make [| 9 |] in
  for _ = 1 to 200 do
    let a = F.random st and b = F.random st in
    Alcotest.(check int) "matches value API" (Gf2p.mul F.field a b) (F.mul a b);
    if a <> F.zero then
      Alcotest.(check bool) "inverse" true (F.equal (F.mul a (F.inv a)) F.one)
  done;
  Alcotest.(check int) "pow" (Gf2p.pow F.field 3 7) (F.pow 3 7)

(* ---------- Gf2p_table ---------- *)

let test_table_matches_generic () =
  List.iter
    (fun m ->
      let t = Gf2p_table.create m in
      let f = Gf2p_table.generic t in
      let st = Random.State.make [| m; 77 |] in
      for _ = 1 to 500 do
        let a = Gf2p.random f st and b = Gf2p.random f st in
        Alcotest.(check int) "mul" (Gf2p.mul f a b) (Gf2p_table.mul t a b);
        if a > 0 then begin
          Alcotest.(check int) "inv" (Gf2p.inv f a) (Gf2p_table.inv t a);
          Alcotest.(check int) "div" (Gf2p.div f b a) (Gf2p_table.div t b a)
        end;
        let e = Random.State.int st 1000 in
        Alcotest.(check int) "pow" (Gf2p.pow f a e) (Gf2p_table.pow t a e)
      done)
    [ 2; 4; 8; 12; 16 ]

let test_table_bounds () =
  Alcotest.check_raises "m=1" (Gf2p.Invalid_degree 1) (fun () ->
      ignore (Gf2p_table.create 1));
  Alcotest.check_raises "m=17" (Gf2p.Invalid_degree 17) (fun () ->
      ignore (Gf2p_table.create 17));
  Alcotest.check_raises "inv 0" Division_by_zero (fun () ->
      ignore (Gf2p_table.inv (Gf2p_table.create 8) 0))

(* ---------- Reed-Solomon ---------- *)

let test_rs_roundtrip () =
  let fld = Gf2p.create 8 in
  let st = Random.State.make [| 31 |] in
  for _ = 1 to 100 do
    let k = 1 + Random.State.int st 6 in
    let n = k + Random.State.int st 6 in
    let rs = Rs.create fld ~k ~n in
    let data = Array.init k (fun _ -> Gf2p.random fld st) in
    let code = Rs.encode rs data in
    (* Systematic prefix. *)
    Alcotest.(check (array int)) "systematic" data (Array.sub code 0 k);
    (* Any k surviving coordinates decode. *)
    let coords = Array.init n Fun.id in
    (* Shuffle and keep k. *)
    for i = n - 1 downto 1 do
      let j = Random.State.int st (i + 1) in
      let tmp = coords.(i) in
      coords.(i) <- coords.(j);
      coords.(j) <- tmp
    done;
    let shares = List.init k (fun i -> (coords.(i), code.(coords.(i)))) in
    Alcotest.(check (array int)) "erasure decode" data (Rs.decode_exn rs shares)
  done

let test_rs_insufficient_shares () =
  let fld = Gf2p.create 8 in
  let rs = Rs.create fld ~k:3 ~n:6 in
  let code = Rs.encode rs [| 1; 2; 3 |] in
  Alcotest.(check bool) "two shares fail" true
    (Rs.decode rs [ (0, code.(0)); (5, code.(5)) ] = None);
  (* Duplicate coordinates do not count twice. *)
  Alcotest.(check bool) "duplicates collapse" true
    (Rs.decode rs [ (0, code.(0)); (0, code.(0)); (0, code.(0)) ] = None)

let test_rs_validates () =
  let fld = Gf2p.create 4 in
  Alcotest.check_raises "n too large for field"
    (Invalid_argument "Rs.create: need 1 <= k <= n <= |field|") (fun () ->
      ignore (Rs.create fld ~k:2 ~n:17));
  let rs = Rs.create fld ~k:2 ~n:4 in
  Alcotest.check_raises "wrong data length" (Invalid_argument "Rs.encode: wrong data length")
    (fun () -> ignore (Rs.encode rs [| 1 |]))

(* ---------- Poly ---------- *)

let f8 = Gf2p.create 8

let test_poly_basic () =
  let p = Poly.of_coeffs f8 [| 1; 2; 3 |] in
  Alcotest.(check int) "degree" 2 (Poly.degree p);
  Alcotest.(check int) "degree zero" (-1) (Poly.degree Poly.zero);
  Alcotest.(check bool) "strip trailing" true
    (Poly.equal p (Poly.of_coeffs f8 [| 1; 2; 3; 0; 0 |]));
  Alcotest.(check int) "eval at 0 = constant" 1 (Poly.eval f8 p 0);
  Alcotest.(check int) "constant eval" 7 (Poly.eval f8 (Poly.constant f8 7) 99)

let poly_gen =
  QCheck2.Gen.(
    map
      (fun l -> Poly.of_coeffs f8 (Array.of_list l))
      (list_size (int_bound 6) (int_bound 255)))

let test_poly_mul_degree =
  qtest "poly mul degree adds" (QCheck2.Gen.pair poly_gen poly_gen) (fun (p, q) ->
      Poly.is_zero p || Poly.is_zero q
      || Poly.degree (Poly.mul f8 p q) = Poly.degree p + Poly.degree q)

let test_poly_eval_hom =
  qtest "poly eval is a ring hom"
    (QCheck2.Gen.triple poly_gen poly_gen (QCheck2.Gen.int_bound 255))
    (fun (p, q, x) ->
      Poly.eval f8 (Poly.add f8 p q) x = Gf2p.add f8 (Poly.eval f8 p x) (Poly.eval f8 q x)
      && Poly.eval f8 (Poly.mul f8 p q) x
         = Gf2p.mul f8 (Poly.eval f8 p x) (Poly.eval f8 q x))

let test_interpolate_roundtrip () =
  let st = Random.State.make [| 11 |] in
  for _ = 1 to 50 do
    let deg = Random.State.int st 5 in
    let p = Poly.random f8 ~degree:deg st in
    let pts = List.init (deg + 1) (fun i -> (i, Poly.eval f8 p i)) in
    let q = Poly.interpolate f8 pts in
    Alcotest.(check bool) "interpolation recovers" true (Poly.equal p q)
  done

let test_interpolate_rejects_dups () =
  Alcotest.check_raises "duplicate points"
    (Invalid_argument "Poly.interpolate: duplicate points") (fun () ->
      ignore (Poly.interpolate f8 [ (1, 2); (1, 3) ]))

(* Empirical Schwartz-Zippel (the tool behind the paper's Lemma 2): a nonzero
   degree-d polynomial has at most d roots, so a random point is a root with
   probability <= d / |F|. *)
let test_schwartz_zippel () =
  let st = Random.State.make [| 21 |] in
  let trials = 2000 and deg = 4 in
  let hits = ref 0 in
  for _ = 1 to trials do
    let p = Poly.random f8 ~degree:deg st in
    let x = Gf2p.random f8 st in
    if Poly.eval f8 p x = 0 then incr hits
  done;
  let bound = float_of_int deg /. 256.0 in
  let rate = float_of_int !hits /. float_of_int trials in
  Alcotest.(check bool)
    (Printf.sprintf "root rate %.4f <= 2x bound %.4f" rate (2.0 *. bound))
    true
    (rate <= 2.0 *. bound)

let () =
  Alcotest.run "field"
    [
      ( "numth",
        [
          Alcotest.test_case "is_prime small" `Quick test_is_prime_small;
          Alcotest.test_case "is_prime mersenne" `Quick test_is_prime_mersenne;
          Alcotest.test_case "factor reconstructs" `Quick test_factor_reconstructs;
          Alcotest.test_case "mulmod powmod" `Quick test_mulmod_powmod;
          Alcotest.test_case "prime divisors" `Quick test_prime_divisors;
          test_factor_property;
          test_mulmod_property;
        ] );
      ( "gf2p",
        [
          Alcotest.test_case "create bounds" `Quick test_create_bounds;
          Alcotest.test_case "known irreducibles" `Quick test_known_irreducibles;
          Alcotest.test_case "create_with_poly validates" `Quick
            test_create_with_poly_validates;
          Alcotest.test_case "mul vs inline oracle" `Quick test_mul_against_inline_oracle;
          Alcotest.test_case "pow laws" `Quick test_pow_laws;
          Alcotest.test_case "of_int reduces" `Quick test_of_int_reduces;
          Alcotest.test_case "generator order" `Quick test_generator_order;
        ]
        @ field_axiom_tests );
      ( "gf256",
        [
          Alcotest.test_case "matches generic field" `Quick test_gf256_matches_generic;
          Alcotest.test_case "log exp roundtrip" `Quick test_gf256_log_exp;
        ] );
      ( "field-intf",
        [ Alcotest.test_case "functor view" `Quick test_field_intf_functor ] );
      ( "gf2p-table",
        [
          Alcotest.test_case "matches generic" `Quick test_table_matches_generic;
          Alcotest.test_case "bounds" `Quick test_table_bounds;
        ] );
      ( "reed-solomon",
        [
          Alcotest.test_case "roundtrip" `Quick test_rs_roundtrip;
          Alcotest.test_case "insufficient shares" `Quick test_rs_insufficient_shares;
          Alcotest.test_case "validation" `Quick test_rs_validates;
        ] );
      ( "poly",
        [
          Alcotest.test_case "basics" `Quick test_poly_basic;
          test_poly_mul_degree;
          test_poly_eval_hom;
          Alcotest.test_case "interpolate roundtrip" `Quick test_interpolate_roundtrip;
          Alcotest.test_case "interpolate rejects dups" `Quick
            test_interpolate_rejects_dups;
          Alcotest.test_case "schwartz-zippel" `Quick test_schwartz_zippel;
        ] );
    ]
