(* Differential tests of the fused GF(2^m) kernel layer: every primitive
   against the scalar Gf2p path, the rewritten Gauss against a verbatim
   copy of the pre-kernel textbook elimination (so the refactor provably
   changed no result, including implementation-defined choices like the
   arbitrary solution of an underdetermined solve), and a regression that
   Rlnc.broadcast decisions are unchanged for the committed seeds. *)

open Nab_field
open Nab_matrix
open Nab_graph
open Nab_core

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* Tabled, byte-tabled and raw degrees all represented, up to the
   max_degree = 61 boundary where 1 lsl m nears native-int width. *)
let degrees = [ 1; 2; 3; 5; 8; 11; 16; 20; 24; 32; 48; 61 ]
let degree_gen = QCheck2.Gen.oneofl degrees

let elt_gen fld st = Gf2p.random fld st

let row_gen =
  QCheck2.Gen.(
    degree_gen >>= fun m ->
    int_range 0 48 >>= fun len ->
    make_primitive
      ~gen:(fun st ->
        let fld = Gf2p.create m in
        (m, Array.init len (fun _ -> elt_gen fld st), Array.init len (fun _ -> elt_gen fld st)))
      ~shrink:(fun _ -> Seq.empty))

(* ---------- scalar references (pre-kernel idiom) ---------- *)

let ref_axpy f ~a ~x ~y =
  Array.iteri (fun i xi -> y.(i) <- Gf2p.add f y.(i) (Gf2p.mul f a xi)) x

let ref_dot f ~x ~y =
  let acc = ref 0 in
  Array.iteri (fun i xi -> acc := Gf2p.add f !acc (Gf2p.mul f xi y.(i))) x;
  !acc

(* Verbatim copy of the seed's textbook Gauss (int array array workspace). *)
module Ref_gauss = struct
  let echelon f (w : int array array) =
    let nr = Array.length w in
    let nc = if nr = 0 then 0 else Array.length w.(0) in
    let pivots = ref [] in
    let r = ref 0 in
    let c = ref 0 in
    while !r < nr && !c < nc do
      let pr = ref (-1) in
      (try
         for i = !r to nr - 1 do
           if w.(i).(!c) <> 0 then begin
             pr := i;
             raise Exit
           end
         done
       with Exit -> ());
      if !pr < 0 then incr c
      else begin
        if !pr <> !r then begin
          let tmp = w.(!pr) in
          w.(!pr) <- w.(!r);
          w.(!r) <- tmp
        end;
        let inv_pivot = Gf2p.inv f w.(!r).(!c) in
        for j = !c to nc - 1 do
          w.(!r).(j) <- Gf2p.mul f inv_pivot w.(!r).(j)
        done;
        for i = !r + 1 to nr - 1 do
          let factor = w.(i).(!c) in
          if factor <> 0 then
            for j = !c to nc - 1 do
              w.(i).(j) <- Gf2p.sub f w.(i).(j) (Gf2p.mul f factor w.(!r).(j))
            done
        done;
        pivots := (!r, !c) :: !pivots;
        incr r;
        incr c
      end
    done;
    List.rev !pivots

  let back_substitute f (w : int array array) pivots =
    let nc = if Array.length w = 0 then 0 else Array.length w.(0) in
    List.iter
      (fun (r, c) ->
        for i = 0 to r - 1 do
          let factor = w.(i).(c) in
          if factor <> 0 then
            for j = c to nc - 1 do
              w.(i).(j) <- Gf2p.sub f w.(i).(j) (Gf2p.mul f factor w.(r).(j))
            done
        done)
      pivots

  let rank f a = List.length (echelon f (Matrix.to_arrays a))

  let rref f a =
    let w = Matrix.to_arrays a in
    let pivots = echelon f w in
    back_substitute f w pivots;
    (Matrix.of_arrays w, List.map snd pivots)

  let inverse f a =
    let n = Matrix.rows a in
    if n <> Matrix.cols a then None
    else begin
      let aug = Matrix.hcat a (Matrix.identity n) in
      let w = Matrix.to_arrays aug in
      let pivots = echelon f w in
      if List.length (List.filter (fun (_, c) -> c < n) pivots) < n then None
      else begin
        back_substitute f w pivots;
        Some (Matrix.sub_matrix (Matrix.of_arrays w) ~row:0 ~col:n ~rows:n ~cols:n)
      end
    end

  let solve f a b =
    let aug = Matrix.hcat a (Matrix.init (Matrix.rows a) 1 (fun i _ -> b.(i))) in
    let w = Matrix.to_arrays aug in
    let pivots = echelon f w in
    let nc = Matrix.cols a in
    if List.exists (fun (_, c) -> c = nc) pivots then None
    else begin
      back_substitute f w pivots;
      let x = Array.make nc 0 in
      List.iter (fun (r, c) -> x.(c) <- w.(r).(nc)) pivots;
      Some x
    end

  let kernel_basis f a =
    let w = Matrix.to_arrays a in
    let pivots = echelon f w in
    back_substitute f w pivots;
    let nc = Matrix.cols a in
    let pivot_cols = List.map snd pivots in
    let free_cols =
      List.filter (fun c -> not (List.mem c pivot_cols)) (List.init nc Fun.id)
    in
    List.map
      (fun fc ->
        let x = Array.make nc 0 in
        x.(fc) <- 1;
        List.iter (fun (r, c) -> x.(c) <- w.(r).(fc)) pivots;
        x)
      free_cols
end

(* ---------- kernel primitives ---------- *)

let test_scalar_ops =
  qtest ~count:300 "kernel mul/inv/div/muladd = Gf2p"
    QCheck2.Gen.(
      degree_gen >>= fun m ->
      make_primitive
        ~gen:(fun st ->
          let fld = Gf2p.create m in
          (m, elt_gen fld st, elt_gen fld st))
        ~shrink:(fun _ -> Seq.empty))
    (fun (m, a, b) ->
      let fld = Gf2p.create m in
      let k = Kernel.of_field fld in
      Kernel.mul k a b = Gf2p.mul fld a b
      && Kernel.add k a b = Gf2p.add fld a b
      && Kernel.muladd k b a a = Gf2p.add fld b (Gf2p.mul fld a a)
      && (a = 0 || Kernel.inv k a = Gf2p.inv fld a)
      && (b = 0 || Kernel.div k a b = Gf2p.div fld a b))

let test_axpy =
  qtest "axpy = scalar axpy" row_gen (fun (m, x, y) ->
      let fld = Gf2p.create m in
      let k = Kernel.of_field fld in
      List.for_all
        (fun a ->
          let yk = Array.copy y and yr = Array.copy y in
          Kernel.axpy_row k ~a ~x ~y:yk;
          ref_axpy fld ~a ~x ~y:yr;
          yk = yr)
        [ 0; 1; (m * 37) land ((1 lsl m) - 1) ])

let test_axpy_aliased =
  qtest "axpy on disjoint ranges of one buffer" row_gen (fun (m, x, y) ->
      let fld = Gf2p.create m in
      let k = Kernel.of_field fld in
      let len = Array.length x in
      let a = 1 land ((1 lsl m) - 1) in
      (* one flat buffer holding both rows, as Gauss uses it *)
      let w = Array.append x y in
      Kernel.axpy k ~a ~x:w ~xoff:0 ~y:w ~yoff:len ~len;
      let yr = Array.copy y in
      ref_axpy fld ~a ~x ~y:yr;
      Array.sub w len len = yr && Array.sub w 0 len = x)

let test_scal =
  qtest "scal = scalar map-mul" row_gen (fun (m, x, _) ->
      let fld = Gf2p.create m in
      let k = Kernel.of_field fld in
      List.for_all
        (fun a ->
          let xk = Array.copy x in
          Kernel.scal_row k ~a ~x:xk;
          xk = Array.map (fun v -> Gf2p.mul fld a v) x)
        [ 0; 1; (m * 29) land ((1 lsl m) - 1) ])

let test_dot =
  qtest "dot = scalar dot" row_gen (fun (m, x, y) ->
      let fld = Gf2p.create m in
      let k = Kernel.of_field fld in
      Kernel.dot k ~x ~xoff:0 ~y ~yoff:0 ~len:(Array.length x) = ref_dot fld ~x ~y)

let test_mul_row_matrix =
  qtest ~count:60 "mul_row_matrix = vec_mul reference"
    QCheck2.Gen.(
      degree_gen >>= fun m ->
      int_range 1 6 >>= fun rows ->
      int_range 1 6 >>= fun cols ->
      make_primitive
        ~gen:(fun st ->
          let fld = Gf2p.create m in
          ( m,
            Array.init rows (fun _ -> elt_gen fld st),
            Matrix.init rows cols (fun _ _ -> elt_gen fld st) ))
        ~shrink:(fun _ -> Seq.empty))
    (fun (m, x, b) ->
      let fld = Gf2p.create m in
      let k = Kernel.of_field fld in
      let cols = Matrix.cols b in
      let y = Array.make cols 0 in
      Kernel.mul_row_matrix k ~x ~xoff:0 ~rows:(Array.length x) ~b:(Matrix.raw b)
        ~boff:0 ~cols ~y ~yoff:0;
      let expect = Array.make cols 0 in
      Array.iteri
        (fun i xi ->
          for j = 0 to cols - 1 do
            expect.(j) <- Gf2p.add fld expect.(j) (Gf2p.mul fld xi (Matrix.get b i j))
          done)
        x;
      y = expect)

let test_range_checks () =
  let k = Kernel.of_field (Gf2p.create 8) in
  let x = Array.make 4 1 and y = Array.make 4 1 in
  List.iter
    (fun f ->
      match f () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected Invalid_argument")
    [
      (fun () -> Kernel.axpy k ~a:1 ~x ~xoff:2 ~y ~yoff:0 ~len:3);
      (fun () -> Kernel.axpy k ~a:1 ~x ~xoff:0 ~y ~yoff:(-1) ~len:2);
      (fun () -> Kernel.scal k ~a:2 ~x ~off:0 ~len:5);
      (fun () -> ignore (Kernel.dot k ~x ~xoff:3 ~y ~yoff:0 ~len:2));
    ]

let test_stats () =
  let k = Kernel.of_field (Gf2p.create 8) in
  let before = Kernel.stats () in
  let x = Array.make 32 3 and y = Array.make 32 5 in
  Kernel.axpy_row k ~a:7 ~x ~y;
  let d = Kernel.diff_stats before (Kernel.stats ()) in
  Alcotest.(check bool) "flops counted" true (d.Kernel.flops >= 32);
  Alcotest.(check bool) "symbols counted" true (d.Kernel.symbols >= 3 * 32)

(* Exact counter semantics: degenerate scalars issue no multiplies, so they
   must count zero flops (the a = 1 axpy is a XOR pass, the a = 0 scal is a
   fill, the a = 0 axpy is a no-op) while symbol traffic still counts. *)
let test_stats_exact () =
  let k = Kernel.of_field (Gf2p.create 8) in
  let x = Array.make 32 3 and y = Array.make 32 5 in
  let delta f =
    let before = Kernel.stats () in
    f ();
    Kernel.diff_stats before (Kernel.stats ())
  in
  let case name f flops symbols =
    let d = delta f in
    Alcotest.(check int) (name ^ " flops") flops d.Kernel.flops;
    Alcotest.(check int) (name ^ " symbols") symbols d.Kernel.symbols
  in
  case "axpy a=1" (fun () -> Kernel.axpy_row k ~a:1 ~x ~y) 0 (3 * 32);
  case "axpy a=0" (fun () -> Kernel.axpy_row k ~a:0 ~x ~y) 0 0;
  case "axpy a=7" (fun () -> Kernel.axpy_row k ~a:7 ~x ~y) 32 (3 * 32);
  case "scal a=0" (fun () -> Kernel.scal_row k ~a:0 ~x:(Array.copy x)) 0 32;
  case "scal a=1" (fun () -> Kernel.scal_row k ~a:1 ~x:(Array.copy x)) 0 0;
  case "scal a=5" (fun () -> Kernel.scal_row k ~a:5 ~x:(Array.copy x)) 32 (2 * 32);
  case "dot" (fun () -> ignore (Kernel.dot k ~x ~xoff:0 ~y ~yoff:0 ~len:32)) 32 (2 * 32)

(* The of_field memo is keyed by (degree, poly): repeatedly minted
   create_with_poly descriptors must all resolve to one kernel, and when
   the polynomial is the canonical one, Kernel.field must return the
   canonical Gf2p.create descriptor — not whichever minted copy arrived
   first. *)
let test_of_field_aliasing () =
  let m = 20 in
  let canonical = Gf2p.create m in
  let poly = Gf2p.reduction_poly canonical in
  let k0 = Kernel.of_field canonical in
  let k1 = Kernel.of_field (Gf2p.create_with_poly ~m ~poly) in
  let k2 = Kernel.of_field (Gf2p.create_with_poly ~m ~poly) in
  Alcotest.(check bool) "one kernel per (m, poly)" true (k0 == k1 && k1 == k2);
  Alcotest.(check bool)
    "field is the canonical descriptor" true
    (Kernel.field k1 == canonical);
  let wide = Gf2p.create 61 in
  let kw = Kernel.of_field (Gf2p.create_with_poly ~m:61 ~poly:(Gf2p.reduction_poly wide)) in
  Alcotest.(check bool) "wide field aliases too" true (Kernel.field kw == wide)

(* ---------- wide-m nibble path ---------- *)

(* Dedicated differential over the nibble-sliced raw path: every wide
   degree (including the max_degree = 61 boundary) on rows long enough to
   use the multi-table path and short enough to hit the shift-table
   cutover. *)
let test_wide_m =
  qtest ~count:200 "wide-m axpy/scal/dot/inv = Gf2p (24/32/48/61)"
    QCheck2.Gen.(
      oneofl [ 24; 32; 48; 61 ] >>= fun m ->
      int_range 0 40 >>= fun len ->
      make_primitive
        ~gen:(fun st ->
          let fld = Gf2p.create m in
          ( m,
            Array.init len (fun _ -> elt_gen fld st),
            Array.init len (fun _ -> elt_gen fld st),
            elt_gen fld st ))
        ~shrink:(fun _ -> Seq.empty))
    (fun (m, x, y, a) ->
      let fld = Gf2p.create m in
      let k = Kernel.of_field fld in
      let yk = Array.copy y and yr = Array.copy y in
      Kernel.axpy_row k ~a ~x ~y:yk;
      ref_axpy fld ~a ~x ~y:yr;
      yk = yr
      && (let xk = Array.copy x in
          Kernel.scal_row k ~a ~x:xk;
          xk = Array.map (fun v -> Gf2p.mul fld a v) x)
      && Kernel.dot k ~x ~xoff:0 ~y ~yoff:0 ~len:(Array.length x) = ref_dot fld ~x ~y
      && (a = 0 || Kernel.inv k a = Gf2p.inv fld a)
      && Array.for_all (fun v -> v = 0 || Kernel.mul k (Kernel.inv k v) v = 1) x)

(* Deterministic top-of-range products at m = 61: the Horner accumulator
   masks to m - 4 bits before shifting, so all-ones and high-bit operands
   must survive without native-int overflow. *)
let test_degree61_boundary () =
  let fld = Gf2p.create 61 in
  let k = Kernel.of_field fld in
  let msk = (1 lsl 61) - 1 in
  List.iter
    (fun (a, b) ->
      Alcotest.(check int)
        (Printf.sprintf "mul %x %x" a b)
        (Gf2p.mul fld a b) (Kernel.mul k a b))
    [
      (msk, msk);
      (msk, 1);
      (1, msk);
      (1 lsl 60, 1 lsl 60);
      (msk, 2);
      ((1 lsl 60) lor 1, msk);
      (msk lxor (1 lsl 30), (1 lsl 60) lor 0xff);
    ];
  Alcotest.(check int) "inv roundtrip at mask" 1 (Kernel.mul k msk (Kernel.inv k msk))

(* ---------- Gauss differential ---------- *)

let square_gen =
  QCheck2.Gen.(
    degree_gen >>= fun m ->
    int_range 1 7 >>= fun n ->
    make_primitive
      ~gen:(fun st ->
        let fld = Gf2p.create m in
        (m, Matrix.init n n (fun _ _ -> elt_gen fld st)))
      ~shrink:(fun _ -> Seq.empty))

let rect_gen =
  QCheck2.Gen.(
    degree_gen >>= fun m ->
    int_range 1 6 >>= fun nr ->
    int_range 1 6 >>= fun nc ->
    make_primitive
      ~gen:(fun st ->
        let fld = Gf2p.create m in
        (m, Matrix.init nr nc (fun _ _ -> elt_gen fld st)))
      ~shrink:(fun _ -> Seq.empty))

let test_gauss_inverse =
  qtest ~count:120 "inverse = reference (incl. None cases)" square_gen
    (fun (m, a) ->
      let fld = Gf2p.create m in
      match (Gauss.inverse fld a, Ref_gauss.inverse fld a) with
      | Some x, Some y -> Matrix.equal x y
      | None, None -> true
      | _ -> false)

let test_gauss_rank_rref =
  qtest ~count:120 "rank/rref/kernel_basis = reference" rect_gen (fun (m, a) ->
      let fld = Gf2p.create m in
      let r1, p1 = Gauss.rref fld a in
      let r2, p2 = Ref_gauss.rref fld a in
      Gauss.rank fld a = Ref_gauss.rank fld a
      && Matrix.equal r1 r2 && p1 = p2
      && Gauss.kernel_basis fld a = Ref_gauss.kernel_basis fld a)

let test_gauss_solve =
  qtest ~count:120 "solve = reference (same arbitrary solution)"
    QCheck2.Gen.(
      degree_gen >>= fun m ->
      int_range 1 6 >>= fun nr ->
      int_range 1 6 >>= fun nc ->
      make_primitive
        ~gen:(fun st ->
          let fld = Gf2p.create m in
          ( m,
            Matrix.init nr nc (fun _ _ -> elt_gen fld st),
            Array.init nr (fun _ -> elt_gen fld st) ))
        ~shrink:(fun _ -> Seq.empty))
    (fun (m, a, b) ->
      let fld = Gf2p.create m in
      Gauss.solve fld a b = Ref_gauss.solve fld a b)

let test_is_invertible =
  qtest ~count:150 "is_invertible = (det <> 0), early-exit path" square_gen
    (fun (m, a) ->
      let fld = Gf2p.create m in
      Gauss.is_invertible fld a = (Gauss.det fld a <> 0))

(* Blocked-vs-unblocked identity at campaign scale: a 256x256 system spans
   eight 32-column panels and four 64-column trailing strips, so this
   exercises every blocking boundary. Pivot order and the reduced matrix
   must match the textbook reference exactly, on a full-rank system and on
   a rank-deficient one (duplicated rows force pivot-column skips across
   panel boundaries). *)
let test_gauss_blocked_256 () =
  let fld = Gf2p.create 8 in
  let st = Random.State.make [| 0xb10c; 256 |] in
  let full = Matrix.random fld 256 256 st in
  let deficient =
    let w = Matrix.to_arrays (Matrix.random fld 256 256 st) in
    w.(255) <- Array.copy w.(0);
    w.(128) <- Array.copy w.(7);
    w.(64) <- Array.copy w.(33);
    Matrix.of_arrays w
  in
  List.iter
    (fun (name, a) ->
      let r1, p1 = Gauss.rref fld a in
      let r2, p2 = Ref_gauss.rref fld a in
      Alcotest.(check bool) (name ^ " rref identical") true (Matrix.equal r1 r2);
      Alcotest.(check (list int)) (name ^ " pivot columns") p2 p1)
    [ ("full-rank 256x256", full); ("rank-deficient 256x256", deficient) ]

(* ---------- Rs / Poly through the kernel ---------- *)

let test_rs_roundtrip =
  qtest ~count:60 "Rs encode is systematic and decodes from any k shares"
    QCheck2.Gen.(
      oneofl [ 4; 8; 11 ] >>= fun m ->
      int_range 1 6 >>= fun k ->
      int_range 0 6 >>= fun extra ->
      make_primitive
        ~gen:(fun st ->
          let fld = Gf2p.create m in
          let n = min (Gf2p.order fld) (k + extra) in
          let k = min k n in
          (m, k, n, Array.init k (fun _ -> elt_gen fld st), Random.State.int st 1000))
        ~shrink:(fun _ -> Seq.empty))
    (fun (m, k, n, data, salt) ->
      let fld = Gf2p.create m in
      let rs = Rs.create fld ~k ~n in
      let code = Rs.encode rs data in
      Array.sub code 0 k = data
      &&
      (* decode from a salted choice of k coordinates *)
      let st = Random.State.make [| salt |] in
      let idx = Array.init n (fun i -> i) in
      for i = n - 1 downto 1 do
        let j = Random.State.int st (i + 1) in
        let t = idx.(i) in
        idx.(i) <- idx.(j);
        idx.(j) <- t
      done;
      let shares = List.init k (fun i -> (idx.(i), code.(idx.(i)))) in
      Rs.decode rs shares = Some data)

let test_poly_eval =
  qtest ~count:100 "Poly.eval = naive power sum"
    QCheck2.Gen.(
      degree_gen >>= fun m ->
      int_range 0 8 >>= fun deg ->
      make_primitive
        ~gen:(fun st ->
          let fld = Gf2p.create m in
          (m, Array.init (deg + 1) (fun _ -> elt_gen fld st), elt_gen fld st))
        ~shrink:(fun _ -> Seq.empty))
    (fun (m, coeffs, v) ->
      let fld = Gf2p.create m in
      let p = Poly.of_coeffs fld coeffs in
      let naive =
        Array.to_list coeffs
        |> List.mapi (fun i c -> Gf2p.mul fld c (Gf2p.pow fld v i))
        |> List.fold_left (Gf2p.add fld) 0
      in
      Poly.eval fld p v = naive)

(* ---------- RLNC regression: committed-seed decisions unchanged ---------- *)

(* Fingerprints recorded from the pre-kernel implementation (rounds /
   header_bits / payload_bits / wall_time for the E9 networks and seeds).
   The kernel rewrite of insert/combine/decode must not change any of
   them, nor the decoded values. *)
let rlnc_cases =
  [
    ("k4", `K4, 3, 2, 1440, 3840, 352.0);
    ("fig2", `Fig2, 3, 2, 144, 1152, 288.0);
    ("chords7", `Chords7, 3, 3, 3744, 9984, 528.0);
    ("dumbbell", `Dumbbell, 5, 3, 5280, 14080, 528.0);
    ("twin", `Twin, 11, 2, 19584, 17408, 544.0);
  ]

let graph_of = function
  | `K4 -> Gen.complete ~n:4 ~cap:2
  | `Fig2 -> Gen.figure2
  | `Chords7 -> Gen.ring_with_chords ~n:7 ~cap:2 ~chord_cap:1
  | `Dumbbell -> Gen.dumbbell ~clique:3 ~clique_cap:4 ~bridge_cap:2
  | `Twin -> Gen.twin_cliques ~half:2 ~spoke_cap:8 ~intra_cap:8 ~cross_cap:1

let test_rlnc_regression () =
  List.iter
    (fun (name, gk, seed, rounds, header, payload, wall) ->
      let g = graph_of gk in
      let gamma = Params.gamma_k g ~source:1 in
      let m = 8 in
      let l = gamma * m * 16 in
      let value = Bitvec.random l (Random.State.make [| 7 |]) in
      let sim = Nab_net.Sim.create g ~bits:Nab_net.Packet.bits in
      let r = Rlnc.broadcast ~net:(Nab_net.Sim.transport sim) ~phase:"rlnc" ~source:1 ~value ~gamma ~m ~seed () in
      Alcotest.(check int) (name ^ " rounds") rounds r.Rlnc.rounds;
      Alcotest.(check int) (name ^ " header bits") header r.Rlnc.header_bits;
      Alcotest.(check int) (name ^ " payload bits") payload r.Rlnc.payload_bits;
      Alcotest.(check (float 0.0)) (name ^ " wall") wall r.Rlnc.wall_time;
      Alcotest.(check bool) (name ^ " all decoded") true r.Rlnc.all_decoded;
      List.iter
        (fun (v, d) ->
          match d with
          | Some d ->
              Alcotest.(check bool)
                (Printf.sprintf "%s node %d value" name v)
                true (Bitvec.equal d value)
          | None -> Alcotest.failf "%s node %d undecoded" name v)
        r.Rlnc.decoded)
    rlnc_cases

(* ---------- Matrix products through the kernel ---------- *)

let test_matrix_mul =
  qtest ~count:80 "Matrix.mul / vec_mul / mul_vec = scalar reference"
    QCheck2.Gen.(
      degree_gen >>= fun m ->
      int_range 1 5 >>= fun a ->
      int_range 1 5 >>= fun b ->
      int_range 1 5 >>= fun c ->
      make_primitive
        ~gen:(fun st ->
          let fld = Gf2p.create m in
          ( m,
            Matrix.init a b (fun _ _ -> elt_gen fld st),
            Matrix.init b c (fun _ _ -> elt_gen fld st) ))
        ~shrink:(fun _ -> Seq.empty))
    (fun (m, a, b) ->
      let fld = Gf2p.create m in
      let expect =
        Matrix.init (Matrix.rows a) (Matrix.cols b) (fun i j ->
            let acc = ref 0 in
            for k = 0 to Matrix.cols a - 1 do
              acc := Gf2p.add fld !acc (Gf2p.mul fld (Matrix.get a i k) (Matrix.get b k j))
            done;
            !acc)
      in
      Matrix.equal (Matrix.mul fld a b) expect
      && Matrix.vec_mul fld (Matrix.row (Matrix.identity (Matrix.rows a)) 0) a
         = Matrix.row a 0
      && Matrix.mul_vec fld b (Matrix.row (Matrix.identity (Matrix.cols b)) 0)
         = Matrix.col b 0)

let () =
  Alcotest.run "kernel"
    [
      ( "primitives",
        [
          test_scalar_ops;
          test_axpy;
          test_axpy_aliased;
          test_scal;
          test_dot;
          test_mul_row_matrix;
          test_wide_m;
          Alcotest.test_case "range checks" `Quick test_range_checks;
          Alcotest.test_case "stats counters" `Quick test_stats;
          Alcotest.test_case "stats exact semantics" `Quick test_stats_exact;
          Alcotest.test_case "degree-61 boundary" `Quick test_degree61_boundary;
          Alcotest.test_case "of_field aliasing" `Quick test_of_field_aliasing;
        ] );
      ( "gauss",
        [
          test_gauss_inverse;
          test_gauss_rank_rref;
          test_gauss_solve;
          test_is_invertible;
          Alcotest.test_case "blocked 256x256 identity" `Quick test_gauss_blocked_256;
        ] );
      ("consumers", [ test_rs_roundtrip; test_poly_eval; test_matrix_mul ]);
      ( "rlnc",
        [ Alcotest.test_case "committed-seed decisions unchanged" `Quick test_rlnc_regression ] );
    ]
