(* Tests for Vec, Matrix and Gauss over GF(2^8). *)

open Nab_field
open Nab_matrix

let f = Gf2p.create 8

let qtest ?(count = 150) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let dim_gen = QCheck2.Gen.int_range 1 6
let elt_gen = QCheck2.Gen.int_bound 255

let matrix_gen rows cols =
  QCheck2.Gen.(
    map
      (fun l -> Matrix.init rows cols (fun i j -> List.nth l ((i * cols) + j)))
      (list_repeat (rows * cols) elt_gen))

let square_gen = QCheck2.Gen.(dim_gen >>= fun n -> pair (return n) (matrix_gen n n))

(* ---------- Vec ---------- *)

let test_vec_ops () =
  let a = [| 1; 2; 3 |] and b = [| 3; 2; 1 |] in
  Alcotest.(check (array int)) "add = xor" [| 2; 0; 2 |] (Vec.add f a b);
  Alcotest.(check int) "dot" (Gf2p.add f (Gf2p.mul f 1 3) (Gf2p.add f (Gf2p.mul f 2 2) (Gf2p.mul f 3 1)))
    (Vec.dot f a b);
  Alcotest.(check bool) "is_zero" true (Vec.is_zero (Vec.zero 4));
  Alcotest.check_raises "length mismatch" (Invalid_argument "Vec: length mismatch")
    (fun () -> ignore (Vec.add f a [| 1 |]))

(* ---------- Matrix ---------- *)

let test_matrix_shape () =
  let a = Matrix.of_arrays [| [| 1; 2 |]; [| 3; 4 |]; [| 5; 6 |] |] in
  Alcotest.(check int) "rows" 3 (Matrix.rows a);
  Alcotest.(check int) "cols" 2 (Matrix.cols a);
  Alcotest.(check int) "get" 4 (Matrix.get a 1 1);
  Alcotest.(check (array int)) "row" [| 3; 4 |] (Matrix.row a 1);
  Alcotest.(check (array int)) "col" [| 2; 4; 6 |] (Matrix.col a 1);
  Alcotest.check_raises "ragged" (Invalid_argument "Matrix.of_arrays: ragged")
    (fun () -> ignore (Matrix.of_arrays [| [| 1 |]; [| 1; 2 |] |]))

let test_transpose_involution =
  qtest "transpose involution"
    QCheck2.Gen.(pair dim_gen dim_gen >>= fun (r, c) -> matrix_gen r c)
    (fun a -> Matrix.equal a (Matrix.transpose (Matrix.transpose a)))

let test_identity_neutral =
  qtest "A * I = I * A = A" square_gen (fun (n, a) ->
      let i = Matrix.identity n in
      Matrix.equal (Matrix.mul f a i) a && Matrix.equal (Matrix.mul f i a) a)

let test_mul_assoc =
  qtest ~count:60 "matrix mul associativity"
    QCheck2.Gen.(
      quad dim_gen dim_gen dim_gen dim_gen >>= fun (a, b, c, d) ->
      triple (matrix_gen a b) (matrix_gen b c) (matrix_gen c d))
    (fun (x, y, z) ->
      Matrix.equal (Matrix.mul f (Matrix.mul f x y) z) (Matrix.mul f x (Matrix.mul f y z)))

let test_vec_mul_consistent =
  qtest "vec_mul = row-matrix mul"
    QCheck2.Gen.(
      pair dim_gen dim_gen >>= fun (r, c) ->
      pair (matrix_gen 1 r) (matrix_gen r c))
    (fun (xrow, a) ->
      let x = Matrix.row xrow 0 in
      Matrix.row (Matrix.mul f xrow a) 0 = Matrix.vec_mul f x a)

let test_hcat_vcat () =
  let a = Matrix.of_arrays [| [| 1; 2 |] |] and b = Matrix.of_arrays [| [| 3 |] |] in
  let h = Matrix.hcat a b in
  Alcotest.(check (array int)) "hcat row" [| 1; 2; 3 |] (Matrix.row h 0);
  let v = Matrix.vcat a (Matrix.of_arrays [| [| 4; 5 |] |]) in
  Alcotest.(check (array int)) "vcat col" [| 2; 5 |] (Matrix.col v 1);
  let sub = Matrix.sub_matrix h ~row:0 ~col:1 ~rows:1 ~cols:2 in
  Alcotest.(check (array int)) "sub" [| 2; 3 |] (Matrix.row sub 0);
  let sel = Matrix.select_cols h [ 2; 0 ] in
  Alcotest.(check (array int)) "select_cols" [| 3; 1 |] (Matrix.row sel 0)

(* ---------- Gauss ---------- *)

let test_rank_cases () =
  Alcotest.(check int) "identity rank" 4 (Gauss.rank f (Matrix.identity 4));
  Alcotest.(check int) "zero rank" 0 (Gauss.rank f (Matrix.create 3 5));
  let rank1 = Matrix.of_arrays [| [| 1; 2 |]; [| 2; 4 |] |] in
  (* Row 2 = 2 * row 1 over GF(2^8): 2*1=2, 2*2=4. *)
  Alcotest.(check int) "rank-1 matrix" 1 (Gauss.rank f rank1)

let test_det_invertibility =
  qtest "det <> 0 iff full rank" square_gen (fun (n, a) ->
      Gauss.det f a <> 0 = (Gauss.rank f a = n))

let test_det_multiplicative =
  qtest ~count:80 "det multiplicative"
    QCheck2.Gen.(dim_gen >>= fun n -> pair (matrix_gen n n) (matrix_gen n n))
    (fun (a, b) ->
      Gauss.det f (Matrix.mul f a b) = Gf2p.mul f (Gauss.det f a) (Gauss.det f b))

let test_inverse_roundtrip =
  qtest "inverse roundtrip" square_gen (fun (n, a) ->
      match Gauss.inverse f a with
      | None -> Gauss.det f a = 0
      | Some ai ->
          Matrix.equal (Matrix.mul f a ai) (Matrix.identity n)
          && Matrix.equal (Matrix.mul f ai a) (Matrix.identity n))

let test_solve_validates =
  qtest "solve gives a solution"
    QCheck2.Gen.(
      pair dim_gen dim_gen >>= fun (r, c) ->
      pair (matrix_gen r c) (matrix_gen r 1))
    (fun (a, bcol) ->
      let b = Matrix.col bcol 0 in
      match Gauss.solve f a b with
      | None ->
          (* Inconsistent: the augmented rank must exceed the plain rank. *)
          Gauss.rank f (Matrix.hcat a bcol) > Gauss.rank f a
      | Some x -> Matrix.mul_vec f a x = b)

let test_kernel_in_nullspace =
  qtest "kernel basis lies in null space"
    QCheck2.Gen.(pair dim_gen dim_gen >>= fun (r, c) -> matrix_gen r c)
    (fun a ->
      let basis = Gauss.kernel_basis f a in
      List.length basis = Matrix.cols a - Gauss.rank f a
      && List.for_all (fun x -> Array.for_all (( = ) 0) (Matrix.mul_vec f a x)) basis)

let test_rref_pivots () =
  let a = Matrix.of_arrays [| [| 0; 1; 2 |]; [| 0; 2; 4 |] |] in
  let r, pivots = Gauss.rref f a in
  Alcotest.(check (list int)) "pivot columns" [ 1 ] pivots;
  Alcotest.(check int) "pivot is 1" 1 (Matrix.get r 0 1)

let test_full_row_rank () =
  let wide = Matrix.of_arrays [| [| 1; 0; 1 |]; [| 0; 1; 1 |] |] in
  Alcotest.(check bool) "wide full rank" true (Gauss.has_invertible_submatrix f wide);
  let deficient = Matrix.of_arrays [| [| 1; 2; 3 |]; [| 2; 4; 6 |] |] in
  Alcotest.(check bool) "deficient" false (Gauss.has_invertible_submatrix f deficient)

let test_random_invertible_whp () =
  (* A random square matrix over GF(2^8) is invertible with probability
     prod (1 - 2^-8k) ~ 0.996; check the empirical rate is near that. *)
  let st = Random.State.make [| 3 |] in
  let trials = 500 in
  let ok = ref 0 in
  for _ = 1 to trials do
    if Gauss.is_invertible f (Matrix.random f 4 4 st) then incr ok
  done;
  Alcotest.(check bool) "invertible rate > 0.95" true (float_of_int !ok > 0.95 *. float_of_int trials)

let () =
  Alcotest.run "matrix"
    [
      ("vec", [ Alcotest.test_case "ops" `Quick test_vec_ops ]);
      ( "matrix",
        [
          Alcotest.test_case "shapes" `Quick test_matrix_shape;
          test_transpose_involution;
          test_identity_neutral;
          test_mul_assoc;
          test_vec_mul_consistent;
          Alcotest.test_case "hcat vcat sub select" `Quick test_hcat_vcat;
        ] );
      ( "gauss",
        [
          Alcotest.test_case "rank cases" `Quick test_rank_cases;
          test_det_invertibility;
          test_det_multiplicative;
          test_inverse_roundtrip;
          test_solve_validates;
          test_kernel_in_nullspace;
          Alcotest.test_case "rref pivots" `Quick test_rref_pivots;
          Alcotest.test_case "full row rank" `Quick test_full_row_rank;
          Alcotest.test_case "random invertible whp" `Quick test_random_invertible_whp;
        ] );
    ]
