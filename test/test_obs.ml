(* The observability layer: JSON round-trips, the no-op sink's zero effect
   on protocol output, and the determinism contract for trace/metrics/JSON
   artifacts (byte-identical at any Pool job count, and stable against the
   committed golden trace). *)

open Nab_graph
open Nab_core
module J = Nab_obs.Json
module Pool = Nab_util.Pool

let k4 = Gen.complete ~n:4 ~cap:2

let input_fn ~l ~seed =
  let rng = Random.State.make [| seed |] in
  let tbl = Hashtbl.create 16 in
  fun k ->
    match Hashtbl.find_opt tbl k with
    | Some v -> v
    | None ->
        let v = Bitvec.random l rng in
        Hashtbl.add tbl k v;
        v

(* ---------- Json ---------- *)

let test_json_roundtrip () =
  let cases =
    [
      J.Null;
      J.Bool true;
      J.Bool false;
      J.Int 0;
      J.Int (-42);
      J.Int max_int;
      J.Float 0.1;
      J.Float 1e-9;
      J.Float (-1.5);
      J.Float 1234567.25;
      J.float infinity;
      J.float neg_infinity;
      J.float nan;
      J.Str "";
      J.Str "plain";
      J.Str "esc \" \\ \n \t \r chars";
      J.Str "ctrl \001\031 high \xc3\xa9";
      J.List [];
      J.List [ J.Int 1; J.Str "two"; J.Null ];
      J.Obj [];
      J.Obj [ ("a", J.Int 1); ("b", J.List [ J.Obj [ ("c", J.Bool false) ] ]) ];
    ]
  in
  List.iteri
    (fun i j ->
      let s = J.to_string j in
      match J.of_string s with
      | Ok j' ->
          Alcotest.(check string)
            (Printf.sprintf "case %d re-encodes identically" i)
            s (J.to_string j')
      | Error e -> Alcotest.failf "case %d (%s): parse error %s" i s e)
    cases;
  (* Floats that happen to be integral survive as numbers with a point. *)
  Alcotest.(check string) "integral float keeps point" "3.0" (J.to_string (J.Float 3.0));
  (* Strict parser: trailing garbage and bare tokens are rejected. *)
  List.iter
    (fun s ->
      match J.of_string s with
      | Ok _ -> Alcotest.failf "%S should not parse" s
      | Error _ -> ())
    [ "{} x"; "[1,]"; "{\"a\":}"; "nul"; "'single'"; "" ]

let test_json_accessors () =
  let j =
    Result.get_ok (J.of_string {|{"i":7,"f":2.5,"s":"hi","b":true,"l":[1],"inf":"inf"}|})
  in
  Alcotest.(check (option int)) "int" (Some 7) (Option.bind (J.member "i" j) J.get_int);
  Alcotest.(check (option (float 0.0)))
    "float" (Some 2.5)
    (Option.bind (J.member "f" j) J.get_float);
  Alcotest.(check (option (float 0.0)))
    "int widens" (Some 7.0)
    (Option.bind (J.member "i" j) J.get_float);
  Alcotest.(check bool) "inf decodes" true
    (Option.bind (J.member "inf" j) J.get_float = Some infinity);
  Alcotest.(check (option string))
    "string" (Some "hi")
    (Option.bind (J.member "s" j) J.get_string);
  Alcotest.(check (option bool))
    "bool" (Some true)
    (Option.bind (J.member "b" j) J.get_bool);
  Alcotest.(check bool) "list" true
    (match Option.bind (J.member "l" j) J.get_list with Some [ J.Int 1 ] -> true | _ -> false);
  Alcotest.(check (option int)) "missing member" None
    (Option.bind (J.member "nope" j) J.get_int)

(* ---------- Bitvec hex ---------- *)

let test_bitvec_hex () =
  let rng = Random.State.make [| 5 |] in
  List.iter
    (fun bits ->
      let v = Bitvec.random bits rng in
      let v' = Bitvec.of_hex ~bits (Bitvec.to_hex v) in
      Alcotest.(check bool) (Printf.sprintf "round-trip %d bits" bits) true
        (Bitvec.equal v v'))
    [ 0; 1; 7; 8; 9; 64; 137; 1024 ];
  List.iter
    (fun (bits, s, why) ->
      match Bitvec.of_hex ~bits s with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "of_hex ~bits:%d %S should reject (%s)" bits s why)
    [
      (8, "f", "odd digit count");
      (8, "f0f0", "too many digits");
      (8, "zz", "not hex");
      (4, "0f", "padding bits set");
      (-1, "", "negative length");
    ]

(* ---------- run_report JSON round-trip ---------- *)

let instance_equal (a : Nab.instance_report) (b : Nab.instance_report) =
  a.Nab.k = b.Nab.k && a.value_bits = b.value_bits && a.gamma_k = b.gamma_k
  && a.rho_k = b.rho_k
  && List.length a.decisions = List.length b.decisions
  && List.for_all2
       (fun (v1, d1) (v2, d2) -> v1 = v2 && Bitvec.equal d1 d2)
       a.decisions b.decisions
  && a.mismatch = b.mismatch && a.dc_run = b.dc_run
  && a.reduced_to_phase1 = b.reduced_to_phase1
  && a.coding_attempts = b.coding_attempts
  && a.wall_time = b.wall_time
  && a.pipelined_time = b.pipelined_time
  && a.phase_stats = b.phase_stats
  && a.utilization = b.utilization
  && a.new_disputes = b.new_disputes

let report_equal (a : Nab.run_report) (b : Nab.run_report) =
  a.Nab.config = b.Nab.config
  && a.adversary_name = b.adversary_name
  && Vset.equal a.faulty b.faulty
  && List.length a.instances = List.length b.instances
  && List.for_all2 instance_equal a.instances b.instances
  && a.dc_count = b.dc_count && a.disputes = b.disputes
  && Digraph.equal a.final_graph b.final_graph
  && a.total_wall = b.total_wall
  && a.total_pipelined = b.total_pipelined
  && a.throughput_wall = b.throughput_wall
  && a.throughput_pipelined = b.throughput_pipelined

(* An ec-liar run exercises every field: mismatches, a DC instance with new
   disputes, an evolved final graph and non-trivial utilization. *)
let sample_report () =
  let config = Nab.config ~f:1 ~l_bits:256 ~m:8 () in
  Nab.run ~g:k4 ~config ~adversary:Adversary.ec_liar
    ~inputs:(input_fn ~l:256 ~seed:17) ~q:3 ()

let test_report_json_roundtrip () =
  let r = sample_report () in
  let j = Report.run_to_json r in
  (match Report.run_of_json j with
  | Ok r' -> Alcotest.(check bool) "decode (run_to_json r) = r" true (report_equal r r')
  | Error e -> Alcotest.failf "run_of_json: %s" e);
  (* Through the actual wire format (string), as the CLI emits it. *)
  match J.of_string (J.to_string j) with
  | Error e -> Alcotest.failf "reparse: %s" e
  | Ok j' -> (
      match Report.run_of_json j' with
      | Ok r' ->
          Alcotest.(check bool) "decode via text = r" true (report_equal r r')
      | Error e -> Alcotest.failf "run_of_json after reparse: %s" e)

let test_report_json_rejects_malformed () =
  let j = Report.run_to_json (sample_report ()) in
  let drop name = function
    | J.Obj fields -> J.Obj (List.filter (fun (k, _) -> k <> name) fields)
    | j -> j
  in
  (match Report.run_of_json (drop "instances" j) with
  | Ok _ -> Alcotest.fail "missing instances must not decode"
  | Error e -> Alcotest.(check bool) "error is descriptive" true (String.length e > 0));
  match Report.run_of_json (J.Str "nope") with
  | Ok _ -> Alcotest.fail "non-object must not decode"
  | Error _ -> ()

(* ---------- the no-op sink changes nothing ---------- *)

let test_null_ctx_identity () =
  let plain = sample_report () in
  (* A context over the no-op sink: enabled=false is only true for [null],
     so this exercises the full emit path into a sink that drops data. *)
  let ctx = Nab_obs.make [ Nab_obs.null_sink ] in
  let config = Nab.config ~f:1 ~l_bits:256 ~m:8 () in
  let observed =
    Nab.run ~obs:ctx ~g:k4 ~config ~adversary:Adversary.ec_liar
      ~inputs:(input_fn ~l:256 ~seed:17) ~q:3 ()
  in
  Nab_obs.close ctx;
  Alcotest.(check bool) "instrumented report = plain report" true
    (report_equal plain observed);
  let default_ctx =
    Nab.run ~obs:Nab_obs.null ~g:k4 ~config ~adversary:Adversary.ec_liar
      ~inputs:(input_fn ~l:256 ~seed:17) ~q:3 ()
  in
  Alcotest.(check bool) "explicit null ctx = plain report" true
    (report_equal plain default_ctx);
  Alcotest.(check int) "null ctx aggregates nothing" 0
    (List.length (Nab_obs.metrics Nab_obs.null))

(* ---------- artifact determinism: jobs=1 vs jobs=4, and the golden ---------- *)

(* The fixed-seed 2-instance run every artifact test shares; matches the
   committed golden_trace.jsonl (regenerate with
   `dune exec test/gen_golden.exe` after an intentional schema change). *)
let golden_artifacts () =
  let trace = Buffer.create 4096 and csv = Buffer.create 512 in
  let ctx =
    Nab_obs.make ~sample_messages:7
      [ Nab_obs.buffer_jsonl_sink trace; Nab_obs.buffer_csv_sink csv ]
  in
  let config = Nab.config ~f:1 ~l_bits:128 ~m:8 () in
  let report =
    Nab.run ~obs:ctx ~g:k4 ~config ~adversary:Adversary.ec_liar
      ~inputs:(input_fn ~l:128 ~seed:23) ~q:2 ()
  in
  Nab_obs.close ctx;
  (Buffer.contents trace, Buffer.contents csv, J.to_string (Report.run_to_json report))

let at_jobs j f =
  Pool.set_jobs j;
  Params.clear_gamma_cache ();
  f ()

let test_artifacts_jobs_independent () =
  let t1, c1, j1 = at_jobs 1 golden_artifacts in
  let t4, c4, j4 = at_jobs 4 golden_artifacts in
  Alcotest.(check string) "trace bytes jobs=1 vs 4" t1 t4;
  Alcotest.(check string) "metrics bytes jobs=1 vs 4" c1 c4;
  Alcotest.(check string) "json report jobs=1 vs 4" j1 j4

let test_trace_matches_golden () =
  let trace, _, _ = at_jobs 2 golden_artifacts in
  let ic = open_in_bin "golden_trace.jsonl" in
  let n = in_channel_length ic in
  let golden = really_input_string ic n in
  close_in ic;
  Alcotest.(check string) "trace = committed golden" golden trace

let test_trace_schema () =
  (* Every line an object with ordered keys, seq gapless, spans balanced —
     the invariants bin/trace_lint.ml enforces in CI. *)
  let trace, _, _ = at_jobs 1 golden_artifacts in
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' trace)
  in
  Alcotest.(check bool) "trace is non-trivial" true (List.length lines > 10);
  let open_spans = Hashtbl.create 8 in
  List.iteri
    (fun i line ->
      let j =
        match J.of_string line with
        | Ok j -> j
        | Error e -> Alcotest.failf "line %d: %s" i e
      in
      Alcotest.(check (option int))
        (Printf.sprintf "seq %d" i)
        (Some i)
        (Option.bind (J.member "seq" j) J.get_int);
      let scope = Option.get (Option.bind (J.member "scope" j) J.get_string) in
      let name = Option.get (Option.bind (J.member "name" j) J.get_string) in
      let depth = Option.value (Hashtbl.find_opt open_spans (scope, name)) ~default:0 in
      match Option.bind (J.member "ev" j) J.get_string with
      | Some "begin" -> Hashtbl.replace open_spans (scope, name) (depth + 1)
      | Some "end" ->
          if depth <= 0 then Alcotest.failf "line %d: end without begin" i;
          Hashtbl.replace open_spans (scope, name) (depth - 1)
      | Some "point" -> ()
      | _ -> Alcotest.failf "line %d: bad ev" i)
    lines;
  Hashtbl.iter
    (fun (scope, name) d ->
      Alcotest.(check int) (Printf.sprintf "span %s/%s balanced" scope name) 0 d)
    open_spans

(* ---------- metrics aggregation ---------- *)

let test_metrics_aggregation () =
  let ctx = Nab_obs.make [ Nab_obs.null_sink ] in
  Nab_obs.add ctx "c" 2;
  Nab_obs.add ctx "c" 3;
  Nab_obs.gauge ctx "g" 7.5;
  Nab_obs.gauge ctx "g" 2.5;
  Nab_obs.observe ctx "h" 1.0;
  Nab_obs.observe ctx "h" 9.0;
  let by_name = List.map (fun m -> (m.Nab_obs.m_name, m)) (Nab_obs.metrics ctx) in
  Nab_obs.close ctx;
  Alcotest.(check (list string)) "sorted names" [ "c"; "g"; "h" ] (List.map fst by_name);
  let m name = List.assoc name by_name in
  Alcotest.(check (float 0.0)) "counter sums" 5.0 (m "c").Nab_obs.m_sum;
  Alcotest.(check (float 0.0)) "gauge last wins" 2.5 (m "g").Nab_obs.m_last;
  Alcotest.(check (float 0.0)) "gauge max" 7.5 (m "g").Nab_obs.m_max;
  Alcotest.(check int) "histogram count" 2 (m "h").Nab_obs.m_count;
  Alcotest.(check (float 0.0)) "histogram min" 1.0 (m "h").Nab_obs.m_min

(* ---------- utilization degenerate case & report rendering ---------- *)

let test_utilization_zero_time () =
  (* Only analytic time elapsed: utilization is [] (no link carried a bit)
     and the report renders the explicit no-traffic line, not an empty
     table. *)
  let sim = Nab_net.Sim.create k4 ~bits:(fun (_ : int) -> 8) in
  Nab_net.Sim.add_cost sim ~phase:"analytic" 5.0;
  Alcotest.(check bool) "analytic-only: no utilization entries" true
    (Nab_net.Sim.utilization sim = []);
  let tm = Nab_net.Sim.timing sim in
  Alcotest.(check (float 1e-9)) "analytic cost counts as wall" 5.0 tm.Nab_net.Sim.wall;
  let inst =
    {
      Nab.k = 1;
      value_bits = 128;
      gamma_k = 2;
      rho_k = 2;
      decisions = [];
      mismatch = false;
      dc_run = false;
      reduced_to_phase1 = false;
      coding_attempts = 1;
      wall_time = 5.0;
      pipelined_time = 5.0;
      phase_stats = tm.Nab_net.Sim.phases;
      utilization = Nab_net.Sim.utilization sim;
      new_disputes = [];
    }
  in
  let rendered = Format.asprintf "%a" Report.pp_phase_breakdown inst in
  Alcotest.(check bool) "renders the no-traffic case" true
    (let needle = "no link traffic" in
     let n = String.length needle and len = String.length rendered in
     let rec scan i = i + n <= len && (String.sub rendered i n = needle || scan (i + 1)) in
     scan 0)

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "value round-trips" `Quick test_json_roundtrip;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "bitvec",
        [ Alcotest.test_case "hex round-trip" `Quick test_bitvec_hex ] );
      ( "report",
        [
          Alcotest.test_case "run_report JSON round-trip" `Quick
            test_report_json_roundtrip;
          Alcotest.test_case "malformed JSON rejected" `Quick
            test_report_json_rejects_malformed;
        ] );
      ( "noop",
        [ Alcotest.test_case "no-op sink leaves output identical" `Quick
            test_null_ctx_identity ] );
      ( "artifacts",
        [
          Alcotest.test_case "byte-identical at jobs=1 vs 4" `Quick
            test_artifacts_jobs_independent;
          Alcotest.test_case "trace matches committed golden" `Quick
            test_trace_matches_golden;
          Alcotest.test_case "trace schema invariants" `Quick test_trace_schema;
        ] );
      ( "metrics",
        [ Alcotest.test_case "aggregation semantics" `Quick test_metrics_aggregation ]
      );
      ( "utilization",
        [ Alcotest.test_case "zero-time case defined and rendered" `Quick
            test_utilization_zero_time ] );
    ]
