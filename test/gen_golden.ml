(* Regenerates test/golden_trace.jsonl — the committed trace of the fixed
   run test_obs.ml's [golden_artifacts] performs. Keep the run parameters
   here and there in sync; rerun after an intentional trace-schema change:

     dune exec test/gen_golden.exe > test/golden_trace.jsonl
*)

open Nab_graph
open Nab_core

let () =
  let input_fn ~l ~seed =
    let rng = Random.State.make [| seed |] in
    let tbl = Hashtbl.create 16 in
    fun k ->
      match Hashtbl.find_opt tbl k with
      | Some v -> v
      | None ->
          let v = Bitvec.random l rng in
          Hashtbl.add tbl k v;
          v
  in
  let trace = Buffer.create 4096 in
  let ctx = Nab_obs.make ~sample_messages:7 [ Nab_obs.buffer_jsonl_sink trace ] in
  let config = Nab.config ~f:1 ~l_bits:128 ~m:8 () in
  let (_ : Nab.run_report) =
    Nab.run ~obs:ctx
      ~g:(Gen.complete ~n:4 ~cap:2)
      ~config ~adversary:Adversary.ec_liar
      ~inputs:(input_fn ~l:128 ~seed:23) ~q:2 ()
  in
  Nab_obs.close ctx;
  print_string (Buffer.contents trace)
