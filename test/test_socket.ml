(* Lifecycle and equivalence tests for the process-per-node socket backend
   (Nab_net.Socket): per-round inbox identity against the synchronous
   simulator, crash-mid-round surfacing as a clean Socket_error, close
   reaping every node process (no orphans), and fd hygiene across repeated
   create/close cycles. The system-level differential (full run reports
   byte-identical to Sim at zero faults) is gated by bench/socket.exe
   --check and the socket quick campaign; this file tests the transport
   directly. *)

(* Must run before anything else: when this binary is re-executed as a
   socket node process it becomes the node's event loop and never returns
   (in particular it never reaches Alcotest.run). *)
let () = Nab_net.Socket.exec_node_if_requested ()

open Nab_graph
open Nab_net

let availability = Socket.available ()

(* Platforms without fork (or without working sockets) skip — loudly, so a
   misconfigured CI runner is visible in the logs, but green: the gate
   only binds where the probe says the backend can run at all. *)
let requires_socket f () =
  match availability with
  | Error reason ->
      Printf.printf "SKIP: socket backend unavailable (%s)\n%!" reason
  | Ok () -> f ()

let k4 () = Gen.complete ~n:4 ~cap:8

(* Everyone sends two packets to every other node; two per ordered pair
   exercises the within-group delivery order the synchronous inbox
   contract fixes exactly. *)
let sends g u =
  List.concat_map
    (fun v ->
      if v = u then []
      else
        [
          ( v,
            Packet.direct ~proto:"t1" ~origin:u ~dst:v
              (Wire.Value { bits = 32; data = [| (u * 100) + v |] }) );
          (v, Packet.direct ~proto:"t2" ~origin:u ~dst:v (Wire.Flag (u < v)));
        ])
    (Digraph.vertices g)

(* --------------------------- round identity --------------------------- *)

let test_rounds_match_sim () =
  let g = k4 () in
  let sim = Sim.factory () ~obs:Nab_obs.null ~keep_events:false g in
  let sock = Socket.factory () ~obs:Nab_obs.null ~keep_events:false g in
  Fun.protect
    ~finally:(fun () ->
      Transport.close sock;
      Transport.close sim)
    (fun () ->
      for round = 1 to 3 do
        let inbox_sim = Transport.round sim ~phase:"test" (sends g) in
        let inbox_sock = Transport.round sock ~phase:"test" (sends g) in
        List.iter
          (fun v ->
            Alcotest.(check bool)
              (Printf.sprintf "round %d: node %d inbox identical to Sim" round v)
              true
              (inbox_sim v = inbox_sock v))
          (Digraph.vertices g)
      done;
      Alcotest.(check bool) "capacity accounting identical to Sim" true
        (Transport.link_bits sim = Transport.link_bits sock))

(* Drive one round for its exchange side effect, discarding the inbox
   lookup closure it returns. *)
let run_round tr ~phase g =
  let (_ : int -> (int * Packet.t) list) = Transport.round tr ~phase (sends g) in
  ()

(* ----------------------------- lifecycle ------------------------------ *)

(* After close has reaped a pid, waitpid on it must say "not my child":
   anything else is an orphan (or an unreaped zombie). *)
let check_reaped pids =
  List.iter
    (fun pid ->
      match Unix.waitpid [] pid with
      | _ -> Alcotest.fail (Printf.sprintf "pid %d not reaped by close" pid)
      | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ())
    pids

let test_crash_mid_round () =
  let g = k4 () in
  let t = Socket.create g in
  let tr = Socket.transport t in
  let pids = Socket.pids t in
  Alcotest.(check int)
    "one process per vertex"
    (Digraph.num_vertices g) (List.length pids);
  (* A clean round first: the fleet is genuinely live. *)
  run_round tr ~phase:"warm" g;
  (* Kill one node, then drive a round: the failure must surface as a
     Socket_error — not a hang, not a wrong inbox, not a stray Unix
     exception. *)
  Unix.kill (List.nth pids 2) Sys.sigkill;
  (match run_round tr ~phase:"crashed" g with
  | () -> Alcotest.fail "round completed with a dead node"
  | exception Socket.Socket_error _ -> ());
  (* close after a failure is still clean, and idempotent. *)
  Socket.close t;
  Socket.close t;
  check_reaped pids;
  (* A dead fleet refuses further rounds rather than misbehaving. *)
  match run_round tr ~phase:"after" g with
  | () -> Alcotest.fail "round on a failed fleet succeeded"
  | exception Socket.Socket_error _ -> ()

let test_clean_close_no_orphans () =
  let g = k4 () in
  let t = Socket.create g in
  let tr = Socket.transport t in
  let pids = Socket.pids t in
  run_round tr ~phase:"r" g;
  Transport.close tr;
  check_reaped pids;
  (* The polite Stop handshake collected every node's traffic counters:
     real bytes moved on real sockets, and no decode errors at zero
     faults. *)
  let stats = Socket.node_stats t in
  Alcotest.(check int) "stats from every node" (Digraph.num_vertices g)
    (List.length stats);
  List.iter
    (fun (v, s) ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d moved bytes cleanly" v)
        true
        (s.Socket.bytes_sent > 0
        && s.Socket.bytes_received > 0
        && s.Socket.decode_errors = 0))
    stats

let count_fds () =
  match Sys.readdir "/proc/self/fd" with
  | entries -> Some (Array.length entries)
  | exception Sys_error _ -> None

let test_no_fd_leak () =
  let g = k4 () in
  let cycle () =
    let t = Socket.create g in
    run_round (Socket.transport t) ~phase:"r" g;
    Socket.close t
  in
  (* One warm-up cycle settles lazy one-time state (signal handling etc.)
     before the measurement window. *)
  cycle ();
  match count_fds () with
  | None -> Printf.printf "SKIP: no /proc/self/fd on this platform\n%!"
  | Some before ->
      for _ = 1 to 5 do
        cycle ()
      done;
      let after = Option.get (count_fds ()) in
      Alcotest.(check int) "fd count stable across create/close cycles" before
        after

(* -------------------------------- main -------------------------------- *)

let () =
  Alcotest.run "socket"
    [
      ( "round identity",
        [
          Alcotest.test_case "inboxes and accounting match Sim" `Quick
            (requires_socket test_rounds_match_sim);
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "crash mid-round is a clean error" `Quick
            (requires_socket test_crash_mid_round);
          Alcotest.test_case "close reaps every node" `Quick
            (requires_socket test_clean_close_no_orphans);
          Alcotest.test_case "no fd leak across cycles" `Quick
            (requires_socket test_no_fd_leak);
        ] );
    ]
