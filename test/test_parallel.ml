(* Determinism of the parallel analytical sweeps: every Params result must
   be identical whatever the Pool job count, and the pool itself must keep
   input order, propagate the lowest-index exception and survive nesting. *)

open Nab_graph
open Nab_core
module Pool = Nab_util.Pool

(* Run [f] at a fixed job count with a cold gamma memo, so a jobs=1 /
   jobs=4 comparison really recomputes everything instead of reading the
   first run's cache. *)
let at_jobs j f =
  Pool.set_jobs j;
  Params.clear_gamma_cache ();
  f ()

let same_at_1_and_4 name f check =
  let seq = at_jobs 1 f in
  let par = at_jobs 4 f in
  check name seq par

(* ---------- pool behaviour ---------- *)

let test_pool_order () =
  List.iter
    (fun n ->
      let xs = List.init n (fun i -> i) in
      Alcotest.(check (list int))
        (Printf.sprintf "map order n=%d" n)
        (List.map (fun x -> (x * 7) + 1) xs)
        (Pool.map ~jobs:4 (fun x -> (x * 7) + 1) xs))
    [ 0; 1; 2; 5; 33 ]

let test_pool_mapi () =
  let xs = [ 'a'; 'b'; 'c'; 'd'; 'e' ] in
  Alcotest.(check (list (pair int char)))
    "mapi pairs index with element"
    (List.mapi (fun i c -> (i, c)) xs)
    (Pool.mapi ~jobs:3 (fun i c -> (i, c)) xs)

let test_pool_exception () =
  (* Both 3 and 7 raise; the caller must see the lowest index. *)
  Alcotest.check_raises "lowest-index failure wins" (Failure "task 3") (fun () ->
      ignore
        (Pool.map ~jobs:4
           (fun x ->
             if x = 3 || x = 7 then failwith (Printf.sprintf "task %d" x) else x)
           (List.init 10 (fun i -> i))))

let test_pool_nested () =
  (* A parallel task that itself maps in parallel: the waiting caller must
     help drain the queue instead of deadlocking. *)
  let table =
    Pool.map ~jobs:4
      (fun row -> Pool.map ~jobs:4 (fun col -> row * col) [ 0; 1; 2; 3 ])
      [ 0; 1; 2; 3 ]
  in
  Alcotest.(check (list (list int)))
    "nested maps complete with correct values"
    (List.init 4 (fun r -> List.init 4 (fun c -> r * c)))
    table;
  Alcotest.(check bool) "workers were spawned" true (Pool.running_workers () > 0)

(* ---------- Params at jobs=1 vs jobs=4 ---------- *)

let star_t =
  let pp fmt (s : Params.star) =
    Format.fprintf fmt "{gamma*=%d rho*=%d lb=%.4f ub=%.4f ratio=%.4f half=%b}"
      s.gamma_star s.rho_star s.throughput_lb s.capacity_ub s.ratio
      s.half_capacity_condition
  in
  Alcotest.testable pp (fun a b -> Stdlib.compare a b = 0)

let graphs =
  [
    ("fig2", Gen.figure2, 1);
    ("twin", Gen.twin_cliques ~half:3 ~spoke_cap:4 ~intra_cap:4 ~cross_cap:1, 1);
    ("complete5", Gen.complete ~n:5 ~cap:2, 1);
    ( "random",
      Gen.random_bb_feasible ~n:5 ~f:1 ~p:0.8 ~min_cap:1 ~max_cap:3 ~seed:42,
      1 );
  ]

let test_gamma_star_jobs () =
  List.iter
    (fun (name, g, f) ->
      same_at_1_and_4 name
        (fun () -> Params.gamma_star g ~source:1 ~f)
        Alcotest.(check int))
    (("fig1", Gen.figure1a, 1) :: graphs)

let test_u_k_jobs () =
  (* Figure 1(b)'s worked example plus dispute-free budgets on the rest. *)
  same_at_1_and_4 "fig1b disputed"
    (fun () ->
      Params.u_k Gen.figure1b ~total_n:4 ~f:1
        ~disputes:[ Params.norm_dispute 3 2 ])
    Alcotest.(check int);
  List.iter
    (fun (name, g, f) ->
      same_at_1_and_4 name
        (fun () ->
          Params.u_k g ~total_n:(Digraph.num_vertices g) ~f ~disputes:[])
        Alcotest.(check int))
    graphs

let test_stars_jobs () =
  (* Figures 1(a)/2 have U_1 < 2 so [stars] rejects them (rho* = 0); their
     gamma*/U_k are still compared above. *)
  List.iter
    (fun (name, g, f) ->
      same_at_1_and_4 name
        (fun () -> Params.stars g ~source:1 ~f)
        (Alcotest.check star_t))
    (List.filter (fun (name, _, _) -> name <> "fig2") graphs)

let test_gamma_star_upper_jobs () =
  (* The sampled bound draws from a seeded RNG; the draw order is kept
     sequential ahead of the fan-out, so the value must not move either. *)
  List.iter
    (fun (name, g, f) ->
      same_at_1_and_4 name
        (fun () -> Params.gamma_star_upper g ~source:1 ~f ~samples:8 ~seed:9)
        Alcotest.(check int))
    graphs

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map keeps input order" `Quick test_pool_order;
          Alcotest.test_case "mapi passes indices" `Quick test_pool_mapi;
          Alcotest.test_case "lowest-index exception" `Quick test_pool_exception;
          Alcotest.test_case "nested maps don't deadlock" `Quick test_pool_nested;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "gamma* jobs=1 vs 4" `Quick test_gamma_star_jobs;
          Alcotest.test_case "U_k jobs=1 vs 4" `Quick test_u_k_jobs;
          Alcotest.test_case "stars jobs=1 vs 4" `Quick test_stars_jobs;
          Alcotest.test_case "sampled gamma' jobs=1 vs 4" `Quick
            test_gamma_star_upper_jobs;
        ] );
    ]
