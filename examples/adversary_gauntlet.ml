(* The adversary gauntlet: run the same broadcast workload against every
   built-in Byzantine strategy and show that agreement and validity hold in
   all of them, that throughput degradation is bounded, and that every
   attacker that actually deviates is eventually identified and excluded.

     dune exec examples/adversary_gauntlet.exe
*)

open Nab_graph
open Nab_core

let () =
  let network = Gen.ring_with_chords ~n:7 ~cap:2 ~chord_cap:2 in
  let config = Nab.config ~f:1 ~l_bits:2048 ~m:16 () in
  let q = 8 in
  let rng = Random.State.make [| 2024 |] in
  let cache = Hashtbl.create 16 in
  let inputs k =
    match Hashtbl.find_opt cache k with
    | Some v -> v
    | None ->
        let v = Bitvec.random config.Nab.l_bits rng in
        Hashtbl.add cache k v;
        v
  in
  let baseline =
    Nab.run ~g:network ~config ~adversary:Adversary.none ~inputs ~q ()
  in
  Printf.printf "gauntlet: 7-node chordal ring, f=1, L=%d, Q=%d\n" config.Nab.l_bits q;
  Printf.printf "fault-free throughput: %.2f bits/time-unit (pipelined)\n\n"
    baseline.Nab.throughput_pipelined;
  Printf.printf "%-18s %-6s %-6s %-3s %-9s %-9s %-9s %s\n" "adversary" "agree" "valid"
    "DC" "disputes" "thpt" "vs-clean" "excluded";
  Printf.printf "%s\n" (String.make 84 '-');
  List.iter
    (fun (name, adv) ->
      let r = Nab.run ~g:network ~config ~adversary:adv ~inputs ~q () in
      let excluded =
        Vset.elements
          (Vset.diff (Digraph.vertex_set network)
             (Digraph.vertex_set r.Nab.final_graph))
      in
      Printf.printf "%-18s %-6b %-6b %-3d %-9d %-9.2f %8.0f%% [%s]\n" name
        (Nab.fault_free_agree r)
        (Nab.valid_outputs r ~inputs)
        r.Nab.dc_count
        (List.length r.Nab.disputes)
        r.Nab.throughput_pipelined
        (100.0 *. r.Nab.throughput_pipelined /. baseline.Nab.throughput_pipelined)
        (String.concat "," (List.map string_of_int excluded)))
    Adversary.all;
  Printf.printf
    "\nEvery strategy preserves agreement and validity; attackers that deviate\n\
     trigger at most f(f+1) = %d dispute-control executions before exclusion,\n\
     after which throughput returns to (or above) the fault-free rate.\n"
    (config.Nab.f * (config.Nab.f + 1))
