(* Replicated state machine — the application the paper's introduction
   motivates (Castro-Liskov-style replicated servers agreeing on requests).

   Five replicas keep a key-value store. Clients submit commands to the
   primary (node 1), which NAB-broadcasts each batch; every fault-free
   replica applies the agreed batches in order, so all stores stay
   identical even though replica 5 is Byzantine.

     dune exec examples/replicated_log.exe
*)

open Nab_graph
open Nab_core

(* ---- a tiny command language, serialised into broadcast values ---- *)

type command = Set of string * int | Incr of string | Del of string

let command_to_string = function
  | Set (k, v) -> Printf.sprintf "set %s %d" k v
  | Incr k -> Printf.sprintf "incr %s" k
  | Del k -> Printf.sprintf "del %s" k

let command_of_string s =
  match String.split_on_char ' ' s with
  | [ "set"; k; v ] -> Some (Set (k, int_of_string v))
  | [ "incr"; k ] -> Some (Incr k)
  | [ "del"; k ] -> Some (Del k)
  | _ -> None

let batch_to_value ~bits cmds =
  let text = String.concat ";" (List.map command_to_string cmds) in
  if 8 * String.length text > bits then invalid_arg "batch too large";
  Bitvec.pad_to (Bitvec.of_string text) bits

let value_to_batch v =
  (* Strip zero-padding, split, parse; garbage decodes to no commands. *)
  let bytes = Bitvec.to_symbols v ~sym_bits:8 in
  let buf = Buffer.create 64 in
  (try
     Array.iter
       (fun b -> if b = 0 then raise Exit else Buffer.add_char buf (Char.chr b))
       bytes
   with Exit -> ());
  String.split_on_char ';' (Buffer.contents buf) |> List.filter_map command_of_string

(* ---- the state machine ---- *)

module Store = Map.Make (String)

let apply store = function
  | Set (k, v) -> Store.add k v store
  | Incr k -> Store.add k (1 + Option.value ~default:0 (Store.find_opt k store)) store
  | Del k -> Store.remove k store

let dump store =
  Store.bindings store
  |> List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v)
  |> String.concat " "

let () =
  let network = Gen.complete ~n:5 ~cap:4 in
  let config = Nab.config ~f:1 ~l_bits:1024 ~m:8 () in
  let workload =
    [|
      [ Set ("x", 10); Set ("y", 1) ];
      [ Incr "x"; Incr "x" ];
      [ Del ("y" : string); Set ("z", 7) ];
      [ Incr "z"; Incr "x"; Incr "z" ];
    |]
  in
  let inputs k = batch_to_value ~bits:config.Nab.l_bits workload.(k - 1) in
  (* Replica 5 is Byzantine: it sends corrupted slices during Phase 1. *)
  let report =
    Nab.run ~g:network ~config ~adversary:Adversary.phase1_corrupt ~inputs
      ~q:(Array.length workload) ()
  in
  Printf.printf "replicated KV store over NAB (5 replicas, replica 5 Byzantine)\n\n";
  (* Each fault-free replica independently replays the agreed log. *)
  let replicas = [ 1; 2; 3; 4 ] in
  let stores =
    List.map
      (fun r ->
        let store =
          List.fold_left
            (fun store (inst : Nab.instance_report) ->
              let agreed = List.assoc r inst.Nab.decisions in
              List.fold_left apply store (value_to_batch agreed))
            Store.empty report.Nab.instances
        in
        (r, store))
      replicas
  in
  List.iter (fun (r, store) -> Printf.printf "replica %d: %s\n" r (dump store)) stores;
  let reference = snd (List.hd stores) in
  let all_equal = List.for_all (fun (_, s) -> Store.equal ( = ) s reference) stores in
  Printf.printf "\nall fault-free replicas identical: %b\n" all_equal;
  Printf.printf "dispute control fired %d time(s); attacker excluded: %b\n"
    report.Nab.dc_count
    (not (Digraph.mem_vertex report.Nab.final_graph 5));
  Printf.printf "log throughput: %.2f bits/time-unit\n" report.Nab.throughput_wall
