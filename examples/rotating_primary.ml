(* Rotating primary: a BFT broadcast service where leadership moves
   round-robin between replicas (as replicated state machines do on
   suspected-primary timeouts). Each epoch is a NAB run with a different
   source node; the paper's bounds are per-source, so the achievable rate
   changes with who leads — and the Byzantine replica attacks whichever
   epoch it can.

     dune exec examples/rotating_primary.exe
*)

open Nab_graph
open Nab_core

let () =
  (* An asymmetric network: node 1 has fat uplinks, the rest form a thinner
     mesh, so leadership placement matters. *)
  let network = Gen.star_mesh ~n:5 ~spoke_cap:6 ~mesh_cap:2 in
  let l = 1024 in
  let epochs = [ 1; 2; 3; 4; 5 ] in
  Printf.printf "rotating-primary broadcast service on a 5-node star-mesh\n";
  Printf.printf "(spokes capacity 6 from node 1, mesh capacity 2), f = 1\n\n";
  Printf.printf "%-7s %-8s %-7s %-11s %-10s %-6s %-6s %-4s %s\n" "epoch" "primary"
    "gamma*" "T_NAB(lb)" "measured" "agree" "valid" "DC" "notes";
  Printf.printf "%s\n" (String.make 78 '-');
  List.iteri
    (fun i primary ->
      let config = Nab.config ~f:1 ~source:primary ~l_bits:l () in
      let s = Params.stars network ~source:primary ~f:1 in
      let rng = Random.State.make [| 50 + i |] in
      let tbl = Hashtbl.create 8 in
      let inputs k =
        match Hashtbl.find_opt tbl k with
        | Some v -> v
        | None ->
            let v = Bitvec.random l rng in
            Hashtbl.add tbl k v;
            v
      in
      (* The corrupted replica is always node 5; when it is primary itself it
         equivocates, otherwise it lies in the equality check. *)
      let adversary =
        if primary = 5 then
          { Adversary.source_equivocate with pick_faulty = (fun ~g:_ ~source ~f:_ -> Vset.singleton source) }
        else { Adversary.ec_liar with pick_faulty = (fun ~g:_ ~source:_ ~f:_ -> Vset.singleton 5) }
      in
      let r = Nab.run ~g:network ~config ~adversary ~inputs ~q:4 () in
      Printf.printf "%-7d %-8d %-7d %-11.2f %-10.2f %-6b %-6b %-4d %s\n" (i + 1) primary
        s.Params.gamma_star s.Params.throughput_lb r.Nab.throughput_pipelined
        (Nab.fault_free_agree r)
        (Nab.valid_outputs r ~inputs)
        r.Nab.dc_count
        (if primary = 5 then
           "Byzantine primary: agreement holds, validity vacuous (paper case iii)"
         else "replica 5 attacks, gets excluded")
    )
    epochs;
  Printf.printf
    "\nA Byzantine primary cannot break agreement: either all replicas receive\n\
     a consistent (possibly bogus) value - the paper's outcome (iii) - or the\n\
     equality check fires and dispute control pins the fault on it.\n"
