(* Quickstart: one Byzantine broadcast of a 1 KiB message on a 4-node
   network with one Byzantine node, using the public NAB API end to end.

     dune exec examples/quickstart.exe
     dune exec examples/quickstart.exe -- --trace t.jsonl   # JSONL trace
     dune exec examples/quickstart.exe -- --json            # JSON report
*)

open Nab_graph
open Nab_core

let () =
  let args = Array.to_list Sys.argv in
  let trace =
    let rec find = function
      | "--trace" :: path :: _ -> Some path
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  let json = List.mem "--json" args in
  (* 1. A network: complete graph on 4 nodes, every link 2 bits/time-unit.
        Node 1 is the source; the fault budget is f = 1 (n >= 3f+1). *)
  let network = Gen.complete ~n:4 ~cap:2 in
  let config = Nab.config ~f:1 ~l_bits:8192 ~m:16 () in

  (* 2. What does the theory promise on this network? *)
  let s = Params.stars network ~source:config.Nab.source ~f:config.Nab.f in
  Printf.printf "network: K4 with capacity 2 on every link\n";
  Printf.printf "gamma* = %d (worst-case Phase-1 rate), rho* = %d (equality-check rate)\n"
    s.Params.gamma_star s.Params.rho_star;
  Printf.printf "guaranteed throughput (eq. 6): %.2f bits/time-unit\n" s.Params.throughput_lb;
  Printf.printf "capacity upper bound (Thm 2):  %.2f bits/time-unit\n\n" s.Params.capacity_ub;

  (* 3. Broadcast three messages while node 4 lies during the equality
        check (the built-in "ec-liar" strategy). *)
  let message k =
    Bitvec.pad_to
      (Bitvec.of_string (Printf.sprintf "block %d: transfer 100 coins from A to B" k))
      config.Nab.l_bits
  in
  let report =
    match trace with
    | None ->
        Nab.run ~g:network ~config ~adversary:Adversary.ec_liar ~inputs:message ~q:3 ()
    | Some path ->
        (* Observability: a trace context turns the same run into a JSONL
           span/event log (see doc/API.md, "Observability"). *)
        let oc = open_out path in
        let obs = Nab_obs.make [ Nab_obs.jsonl_sink oc ] in
        let report =
          Nab.run ~obs ~g:network ~config ~adversary:Adversary.ec_liar
            ~inputs:message ~q:3 ()
        in
        Nab_obs.close obs;
        close_out oc;
        report
  in
  if json then print_endline (Nab_obs.Json.to_string (Report.run_to_json report));

  (* 4. Inspect the outcome. *)
  List.iter
    (fun (inst : Nab.instance_report) ->
      Printf.printf "instance %d: gamma_k=%d rho_k=%d mismatch=%b dispute-control=%b\n"
        inst.Nab.k inst.Nab.gamma_k inst.Nab.rho_k inst.Nab.mismatch inst.Nab.dc_run)
    report.Nab.instances;
  Printf.printf "\nfault-free nodes agreed on every instance: %b\n"
    (Nab.fault_free_agree report);
  Printf.printf "outputs equal the source's inputs:         %b\n"
    (Nab.valid_outputs report ~inputs:message);
  Printf.printf "Byzantine node identified and excluded:    %b (faulty = node 4)\n"
    (not (Digraph.mem_vertex report.Nab.final_graph 4));
  Printf.printf "measured throughput: %.2f bits/time-unit (wall), %.2f (pipelined)\n"
    report.Nab.throughput_wall report.Nab.throughput_pipelined
