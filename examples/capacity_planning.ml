(* Capacity planning: a network operator compares topologies and source
   placements using the paper's analytical machinery (gamma*, rho*, the
   eq.-6 throughput guarantee and the Theorem-2 capacity ceiling) before
   deploying a single node.

     dune exec examples/capacity_planning.exe
*)

open Nab_graph
open Nab_core

let row name g ~f =
  let s = Params.stars g ~source:1 ~f in
  Printf.printf "%-26s %4d %7d %6d %10.2f %10.2f %7.0f%% %s\n" name
    (Digraph.num_vertices g) s.Params.gamma_star s.Params.rho_star
    s.Params.throughput_lb s.Params.capacity_ub
    (100.0 *. s.Params.ratio)
    (if s.Params.half_capacity_condition then "1/2 regime" else "1/3 regime")

let () =
  Printf.printf
    "Comparing candidate topologies for a 1-fault-tolerant broadcast service.\n\n";
  Printf.printf "%-26s %4s %7s %6s %10s %10s %8s %s\n" "topology" "n" "gamma*" "rho*"
    "T_NAB(lb)" "C_BB(ub)" "ratio" "";
  Printf.printf "%s\n" (String.make 92 '-');
  row "complete, cap 2" (Gen.complete ~n:4 ~cap:2) ~f:1;
  row "complete, cap 4" (Gen.complete ~n:4 ~cap:4) ~f:1;
  row "complete n=7, cap 1" (Gen.complete ~n:7 ~cap:1) ~f:1;
  row "ring+chords n=7" (Gen.ring_with_chords ~n:7 ~cap:2 ~chord_cap:1) ~f:1;
  row "dumbbell, thin bridges" (Gen.dumbbell ~clique:3 ~clique_cap:4 ~bridge_cap:1) ~f:1;
  row "dumbbell, fat bridges" (Gen.dumbbell ~clique:3 ~clique_cap:4 ~bridge_cap:4) ~f:1;
  row "star-mesh, fat uplinks" (Gen.star_mesh ~n:6 ~spoke_cap:6 ~mesh_cap:2) ~f:1;
  row "star-mesh, thin uplinks" (Gen.star_mesh ~n:6 ~spoke_cap:1 ~mesh_cap:2) ~f:1;

  (* Source placement: on an asymmetric network, where the source sits
     changes gamma* (its worst-case broadcast min-cut) and hence what NAB
     can promise. *)
  Printf.printf "\nSource placement on the thin-bridge dumbbell (f = 1):\n\n";
  let g = Gen.dumbbell ~clique:3 ~clique_cap:4 ~bridge_cap:2 in
  Printf.printf "%-10s %8s %8s %12s\n" "source" "gamma*" "rho*" "T_NAB(lb)";
  List.iter
    (fun src ->
      let s = Params.stars g ~source:src ~f:1 in
      Printf.printf "node %-5d %8d %8d %12.2f\n" src s.Params.gamma_star
        s.Params.rho_star s.Params.throughput_lb)
    (Digraph.vertices g);
  Printf.printf
    "\n(Bridge endpoints see the same bottleneck; the guarantee is limited by\n\
     the three bridges, so upgrading those links is what raises throughput.)\n"
