(* Configuration consensus: five servers must agree on which firmware hash
   to activate. Each server proposes the hash it downloaded; one server is
   Byzantine and tries to wedge the rollout. Multi-valued consensus is built
   from n parallel NAB broadcasts (everyone broadcasts, everyone applies the
   same majority rule to the agreed vector) - the classical reduction the
   paper's replicated-server motivation relies on.

     dune exec examples/config_consensus.exe
*)

open Nab_graph
open Nab_core

let hash_of_string s =
  (* A toy 61-bit FNV-style hash, enough to tell proposals apart. *)
  let h = ref 0x1cbf29ce484222 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x100000001b3 land ((1 lsl 61) - 1))
    s;
  Bitvec.of_symbols ~sym_bits:8 (Array.init 8 (fun i -> (!h lsr (8 * i)) land 0xff))

let () =
  let network = Gen.complete ~n:5 ~cap:2 in
  let config = Nab.config ~f:1 ~l_bits:64 ~m:8 () in
  (* Four servers downloaded firmware 2.1.7; the Byzantine one (node 5)
     proposes something else and also lies inside the protocol. *)
  let good = "firmware-2.1.7" and rogue = "firmware-evil" in
  let inputs v = if v = 5 then hash_of_string rogue else hash_of_string good in
  Printf.printf "five servers vote on a firmware hash; node 5 is Byzantine\n\n";
  List.iter
    (fun (name, adv) ->
      let r = Consensus.run ~g:network ~config ~adversary:adv ~inputs in
      let faulty = adv.Adversary.pick_faulty ~g:network ~source:1 ~f:1 in
      let decision = List.assoc 1 r.Consensus.decisions in
      let chosen =
        if Bitvec.equal decision (hash_of_string good) then good
        else if Bitvec.equal decision (hash_of_string rogue) then rogue
        else "<other>"
      in
      Printf.printf "%-12s agree=%b chosen=%-16s (honest majority wins: %b)\n" name
        (Consensus.all_agree r ~faulty)
        chosen (chosen = good))
    [
      ("dormant", Adversary.dormant);
      ("crash", Adversary.crash);
      ("ec-liar", Adversary.ec_liar);
      ("garbage", Adversary.garbage ~seed:7);
    ];
  Printf.printf
    "\nWhatever node 5 does, the four honest proposals dominate the agreed\n\
     vector, so every fault-free server activates %s.\n"
    good
